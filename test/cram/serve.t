The --serve daemon on the paper's Examples 1-2 fixture (same setup as
validate.t):

  $ cat > person.shex <<'SCHEMA'
  > PREFIX foaf: <http://xmlns.com/foaf/0.1/>
  > PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
  > <Person> {
  >   foaf:age xsd:integer
  >   , foaf:name xsd:string+
  >   , foaf:knows @<Person>*
  > }
  > SCHEMA

  $ cat > people.ttl <<'DATA'
  > @prefix foaf: <http://xmlns.com/foaf/0.1/> .
  > @prefix : <http://example.org/> .
  > :john foaf:age 23; foaf:name "John"; foaf:knows :bob .
  > :bob foaf:age 34; foaf:name "Bob", "Robert" .
  > :mary foaf:age 50, 65 .
  > DATA

One JSON command per stdin line, one JSON response per stdout line.
Deleting bob's age invalidates exactly the dependency frontier of the
edit — bob and, through john's `knows @<Person>` reference, john, but
never mary — and the response lists the verdicts the delta flipped.
Re-inserting the triple flips them back.  EOF ends the daemon with
exit 0:

  $ shex-validate --serve --schema person.shex --data people.ttl <<'EOF'
  > {"cmd":"query","node":"http://example.org/john","shape":"Person"}
  > {"cmd":"query","node":"http://example.org/mary","shape":"Person"}
  > {"cmd":"delete","triples":"<http://example.org/bob> <http://xmlns.com/foaf/0.1/age> 34 ."}
  > {"cmd":"query","node":"http://example.org/john","shape":"Person"}
  > {"cmd":"insert","triples":"<http://example.org/bob> <http://xmlns.com/foaf/0.1/age> 34 ."}
  > {"cmd":"query","node":"http://example.org/john","shape":"Person"}
  > EOF
  {"ok":true,"node":"<http://example.org/john>","shape":"Person","conformant":true}
  {"ok":true,"node":"<http://example.org/mary>","shape":"Person","conformant":false}
  {"ok":true,"applied":1,"frontier":2,"resolved":2,"changed":[{"node":"<http://example.org/john>","shape":"Person","conformant":false},{"node":"<http://example.org/bob>","shape":"Person","conformant":false}]}
  {"ok":true,"node":"<http://example.org/john>","shape":"Person","conformant":false}
  {"ok":true,"applied":1,"frontier":2,"resolved":2,"changed":[{"node":"<http://example.org/john>","shape":"Person","conformant":true},{"node":"<http://example.org/bob>","shape":"Person","conformant":true}]}
  {"ok":true,"node":"<http://example.org/john>","shape":"Person","conformant":true}

A session can also start empty and be loaded over the protocol; no-op
edits (deleting an absent triple) apply nothing and invalidate
nothing:

  $ shex-validate --serve <<'EOF'
  > {"cmd":"load","schema":"person.shex","data":"people.ttl"}
  > {"cmd":"delete","triples":"<http://example.org/nobody> <http://xmlns.com/foaf/0.1/age> 99 ."}
  > {"cmd":"shutdown"}
  > EOF
  {"ok":true,"shapes":1,"triples":8}
  {"ok":true,"applied":0,"frontier":0,"resolved":0,"changed":[]}
  {"ok":true}

Malformed commands — broken JSON, unknown commands, missing members,
commands before any schema is loaded, unparsable triples, unknown
shape labels — answer a plain "error:" line and the daemon keeps
serving (the final query still works, and the error count lands in
the metrics):

  $ shex-validate --serve --schema person.shex --data people.ttl <<'EOF' \
  >   | sed -E 's/"seconds":[0-9.e+-]+/"seconds":_/g'
  > not json at all
  > {"nocmd":true}
  > {"cmd":"frobnicate"}
  > {"cmd":"insert"}
  > {"cmd":"insert","triples":"this is not turtle"}
  > {"cmd":"query","node":"http://example.org/john","shape":"Nope"}
  > {"cmd":"query","node":"http://example.org/john","shape":"Person"}
  > {"cmd":"metrics"}
  > EOF
  error: parse: JSON error at 1:2: expected 'u'
  error: missing "cmd" member
  error: unknown command "frobnicate" (known: load, insert, delete, query, metrics, shutdown)
  error: missing "triples" member (Turtle text)
  error: triples: lexical error at 1:5: expected ':' after "this"
  error: unknown shape label "Nope" (known: Person)
  {"ok":true,"node":"<http://example.org/john>","shape":"Person","conformant":true}
  {"ok":true,"metrics":{"counters":{"backtrack_branches":0,"backtrack_decompositions":0,"deriv_steps":6,"fixpoint_demands":2,"fixpoint_flips":0,"fixpoint_iterations":2,"incremental_deltas":0,"incremental_edits":0,"incremental_full_resets":0,"incremental_invalidated":0,"incremental_resolved":0,"serve_errors":6,"serve_requests":8,"sorbe_counter_updates":0,"sorbe_matches":0},"gauges":{},"histograms":{"deriv_size_after":{"count":6,"sum":48,"max":9,"buckets":{"8":3,"16":3}},"deriv_size_before":{"count":6,"sum":48,"max":9,"buckets":{"8":3,"16":3}},"incremental_frontier_size":{"count":0,"sum":0,"max":0,"buckets":{}}},"spans":{"incremental_apply":{"count":0,"seconds":_},"serve_request":{"count":7,"seconds":_}}}}

Commands before a load (daemon started bare) are errors, not crashes:

  $ shex-validate --serve <<'EOF'
  > {"cmd":"query","node":"http://example.org/john","shape":"Person"}
  > EOF
  error: no schema loaded (send {"cmd":"load",...} first)

The --serve daemon on the paper's Examples 1-2 fixture (same setup as
validate.t):

  $ cat > person.shex <<'SCHEMA'
  > PREFIX foaf: <http://xmlns.com/foaf/0.1/>
  > PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
  > <Person> {
  >   foaf:age xsd:integer
  >   , foaf:name xsd:string+
  >   , foaf:knows @<Person>*
  > }
  > SCHEMA

  $ cat > people.ttl <<'DATA'
  > @prefix foaf: <http://xmlns.com/foaf/0.1/> .
  > @prefix : <http://example.org/> .
  > :john foaf:age 23; foaf:name "John"; foaf:knows :bob .
  > :bob foaf:age 34; foaf:name "Bob", "Robert" .
  > :mary foaf:age 50, 65 .
  > DATA

One JSON command per stdin line, one JSON response per stdout line.
Deleting bob's age invalidates exactly the dependency frontier of the
edit — bob and, through john's `knows @<Person>` reference, john, but
never mary — and the response lists the verdicts the delta flipped.
Re-inserting the triple flips them back.  Every JSON response ends
with the daemon's monotonic request id ("error:" lines stay bare, and
errors still consume an id).  EOF ends the daemon with exit 0:

  $ shex-validate --serve --schema person.shex --data people.ttl <<'EOF'
  > {"cmd":"query","node":"http://example.org/john","shape":"Person"}
  > {"cmd":"query","node":"http://example.org/mary","shape":"Person"}
  > {"cmd":"delete","triples":"<http://example.org/bob> <http://xmlns.com/foaf/0.1/age> 34 ."}
  > {"cmd":"query","node":"http://example.org/john","shape":"Person"}
  > {"cmd":"insert","triples":"<http://example.org/bob> <http://xmlns.com/foaf/0.1/age> 34 ."}
  > {"cmd":"query","node":"http://example.org/john","shape":"Person"}
  > EOF
  {"ok":true,"node":"<http://example.org/john>","shape":"Person","conformant":true,"request":1}
  {"ok":true,"node":"<http://example.org/mary>","shape":"Person","conformant":false,"request":2}
  {"ok":true,"applied":1,"frontier":2,"resolved":2,"changed":[{"node":"<http://example.org/john>","shape":"Person","conformant":false},{"node":"<http://example.org/bob>","shape":"Person","conformant":false}],"request":3}
  {"ok":true,"node":"<http://example.org/john>","shape":"Person","conformant":false,"request":4}
  {"ok":true,"applied":1,"frontier":2,"resolved":2,"changed":[{"node":"<http://example.org/john>","shape":"Person","conformant":true},{"node":"<http://example.org/bob>","shape":"Person","conformant":true}],"request":5}
  {"ok":true,"node":"<http://example.org/john>","shape":"Person","conformant":true,"request":6}

A session can also start empty and be loaded over the protocol; no-op
edits (deleting an absent triple) apply nothing and invalidate
nothing:

  $ shex-validate --serve <<'EOF'
  > {"cmd":"load","schema":"person.shex","data":"people.ttl"}
  > {"cmd":"delete","triples":"<http://example.org/nobody> <http://xmlns.com/foaf/0.1/age> 99 ."}
  > {"cmd":"shutdown"}
  > EOF
  {"ok":true,"shapes":1,"triples":8,"request":1}
  {"ok":true,"applied":0,"frontier":0,"resolved":0,"changed":[],"request":2}
  {"ok":true,"request":3}

Malformed commands — broken JSON, unknown commands, missing members,
commands before any schema is loaded, unparsable triples, unknown
shape labels — answer a plain "error:" line and the daemon keeps
serving (the final query still works, and the error count lands in
the metrics).  The metrics reply carries the daemon's uptime (wall
seconds and requests served) and process resources (Gc heap words and
collection counts) ahead of the telemetry snapshot; everything
wall-clock- or allocation-dependent is normalised here:

  $ shex-validate --serve --schema person.shex --data people.ttl <<'EOF' \
  >   | sed -E 's/"seconds":[0-9.e+-]+/"seconds":_/g; s/"(heap_words|minor_collections|major_collections)":[0-9]+/"\1":_/g; s/"serve_latency_us":\{[^}]*\}\}/"serve_latency_us":_/g'
  > not json at all
  > {"nocmd":true}
  > {"cmd":"frobnicate"}
  > {"cmd":"insert"}
  > {"cmd":"insert","triples":"this is not turtle"}
  > {"cmd":"query","node":"http://example.org/john","shape":"Nope"}
  > {"cmd":"query","node":"http://example.org/john","shape":"Person"}
  > {"cmd":"metrics"}
  > EOF
  error: parse: JSON error at 1:2: expected 'u'
  error: missing "cmd" member
  error: unknown command "frobnicate" (known: load, insert, delete, query, metrics, analyze, slowlog, shutdown)
  error: missing "triples" member (Turtle text)
  error: triples: lexical error at 1:5: expected ':' after "this"
  error: unknown shape label "Nope" (known: Person)
  {"ok":true,"node":"<http://example.org/john>","shape":"Person","conformant":true,"request":7}
  {"ok":true,"uptime":{"seconds":_,"requests":8},"resources":{"heap_words":_,"minor_collections":_,"major_collections":_},"metrics":{"counters":{"backtrack_branches":0,"backtrack_decompositions":0,"deriv_steps":6,"fixpoint_demands":2,"fixpoint_flips":0,"fixpoint_iterations":2,"incremental_deltas":0,"incremental_edits":0,"incremental_full_resets":0,"incremental_invalidated":0,"incremental_resolved":0,"serve_errors":6,"serve_requests":8,"sorbe_counter_updates":0,"sorbe_matches":0},"gauges":{},"histograms":{"deriv_size_after":{"count":6,"sum":48,"max":9,"buckets":{"8":3,"16":3}},"deriv_size_before":{"count":6,"sum":48,"max":9,"buckets":{"8":3,"16":3}},"incremental_frontier_size":{"count":0,"sum":0,"max":0,"buckets":{}},"serve_latency_us":_},"spans":{"incremental_apply":{"count":0,"seconds":_},"serve_request":{"count":7,"seconds":_}}},"request":8}

Slow-validation capture: started with --slow-ms 0 every check lands
in the ring buffer with its verdict, failure reason and work-counter
deltas.  The slowlog command dumps the buffer; "threshold_ms" rewires
the threshold live (so john's fast query below stays out), and
"clear" empties the ring after dumping.  Each entry carries the
capture timestamp and the id of the request whose check tripped the
threshold (mary's slow check below was request 1 — the id echoed in
that query's own response).  Only the wall clocks are
nondeterministic:

  $ shex-validate --serve --schema person.shex --data people.ttl --slow-ms 0 <<'EOF' \
  >   | sed -E 's/"ms":[0-9.e+-]+/"ms":_/g; s/"at":[0-9.e+-]+/"at":_/g'
  > {"cmd":"query","node":"http://example.org/mary","shape":"Person"}
  > {"cmd":"slowlog"}
  > {"cmd":"slowlog","threshold_ms":5000}
  > {"cmd":"query","node":"http://example.org/john","shape":"Person"}
  > {"cmd":"slowlog","clear":true}
  > {"cmd":"slowlog"}
  > {"cmd":"shutdown"}
  > EOF
  {"ok":true,"node":"<http://example.org/mary>","shape":"Person","conformant":false,"request":1}
  {"ok":true,"slowlog":{"threshold_ms":0,"capacity":128,"seen":1,"entries":[{"node":"<http://example.org/mary>","shape":"Person","ms":_,"at":_,"conformant":false,"request":1,"reason":"triple <http://example.org/mary> <http://xmlns.com/foaf/0.1/age> \"65\"^^<http://www.w3.org/2001/XMLSchema#integer> . matches no arc of the remaining expression (it reduces the expression to ∅)","work":{"deriv_steps":2,"fixpoint_iterations":1,"fixpoint_flips":1,"fixpoint_demands":1}}]},"request":2}
  {"ok":true,"slowlog":{"threshold_ms":5000,"capacity":128,"seen":1,"entries":[{"node":"<http://example.org/mary>","shape":"Person","ms":_,"at":_,"conformant":false,"request":1,"reason":"triple <http://example.org/mary> <http://xmlns.com/foaf/0.1/age> \"65\"^^<http://www.w3.org/2001/XMLSchema#integer> . matches no arc of the remaining expression (it reduces the expression to ∅)","work":{"deriv_steps":2,"fixpoint_iterations":1,"fixpoint_flips":1,"fixpoint_demands":1}}]},"request":3}
  {"ok":true,"node":"<http://example.org/john>","shape":"Person","conformant":true,"request":4}
  {"ok":true,"slowlog":{"threshold_ms":5000,"capacity":128,"seen":1,"entries":[{"node":"<http://example.org/mary>","shape":"Person","ms":_,"at":_,"conformant":false,"request":1,"reason":"triple <http://example.org/mary> <http://xmlns.com/foaf/0.1/age> \"65\"^^<http://www.w3.org/2001/XMLSchema#integer> . matches no arc of the remaining expression (it reduces the expression to ∅)","work":{"deriv_steps":2,"fixpoint_iterations":1,"fixpoint_flips":1,"fixpoint_demands":1}}]},"request":5}
  {"ok":true,"slowlog":{"threshold_ms":5000,"capacity":128,"seen":0,"entries":[]},"request":6}
  {"ok":true,"request":7}

Asking for the slowlog when capture was never armed is an error, not
a crash:

  $ shex-validate --serve --schema person.shex --data people.ttl <<'EOF'
  > {"cmd":"slowlog"}
  > EOF
  error: slow-validation capture is off (start with --slow-ms or send {"cmd":"slowlog","threshold_ms":N})

Commands before a load (daemon started bare) are errors, not crashes:

  $ shex-validate --serve <<'EOF'
  > {"cmd":"query","node":"http://example.org/john","shape":"Person"}
  > EOF
  error: no schema loaded (send {"cmd":"load",...} first)

Prometheus text-exposition format, on the paper's Examples 1-2
fixture (same setup as validate.t):

  $ cat > person.shex <<'SCHEMA'
  > PREFIX foaf: <http://xmlns.com/foaf/0.1/>
  > PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
  > <Person> {
  >   foaf:age xsd:integer
  >   , foaf:name xsd:string+
  >   , foaf:knows @<Person>*
  > }
  > SCHEMA

  $ cat > people.ttl <<'DATA'
  > @prefix foaf: <http://xmlns.com/foaf/0.1/> .
  > @prefix : <http://example.org/> .
  > :john foaf:age 23; foaf:name "John"; foaf:knows :bob .
  > :bob foaf:age 34; foaf:name "Bob", "Robert" .
  > :mary foaf:age 50, 65 .
  > DATA

With --profile the snapshot carries, beyond the engine's global
counters and histograms: process-resource gauges (each with a # HELP
line), and the per-shape / per-node attribution families rendered as
labelled cells — `family{shape="…"} value`.  Span families get the
conventional `_count` / `_sum` pair.  Everything wall-clock- or
allocation-dependent (the Gc gauges and the span sums) is normalised;
sed ends the pipeline so mary's failing verdict sets no exit marker:

  $ shex-validate --schema person.shex --data people.ttl \
  >   --node http://example.org/mary --shape Person \
  >   --profile --metrics text --quiet 2>/dev/null \
  >   | sed -E 's/^(shex_gc_[a-z_]+) [0-9.e+-]+$/\1 _/; s/^(shex_check_seconds_by_(node|shape)_seconds_sum\{[^}]*\}) [0-9.e+-]+$/\1 _/'
  # TYPE shex_backtrack_branches counter
  shex_backtrack_branches 0
  # TYPE shex_backtrack_decompositions counter
  shex_backtrack_decompositions 0
  # TYPE shex_deriv_steps counter
  shex_deriv_steps 2
  # TYPE shex_fixpoint_demands counter
  shex_fixpoint_demands 1
  # TYPE shex_fixpoint_flips counter
  shex_fixpoint_flips 1
  # TYPE shex_fixpoint_iterations counter
  shex_fixpoint_iterations 1
  # HELP shex_gc_compactions Heap compactions
  # TYPE shex_gc_compactions gauge
  shex_gc_compactions _
  # HELP shex_gc_heap_words Major heap size in words
  # TYPE shex_gc_heap_words gauge
  shex_gc_heap_words _
  # HELP shex_gc_major_collections Major collection cycles
  # TYPE shex_gc_major_collections gauge
  shex_gc_major_collections _
  # HELP shex_gc_major_words Gc.quick_stat major_words
  # TYPE shex_gc_major_words gauge
  shex_gc_major_words _
  # HELP shex_gc_minor_collections Minor collections
  # TYPE shex_gc_minor_collections gauge
  shex_gc_minor_collections _
  # HELP shex_gc_minor_words Gc.quick_stat minor_words
  # TYPE shex_gc_minor_words gauge
  shex_gc_minor_words _
  # HELP shex_gc_top_heap_words Largest major heap size reached, in words
  # TYPE shex_gc_top_heap_words gauge
  shex_gc_top_heap_words _
  # HELP shex_memo_entries Memoised (node, shape) verdicts
  # TYPE shex_memo_entries gauge
  shex_memo_entries 1
  # TYPE shex_sorbe_counter_updates counter
  shex_sorbe_counter_updates 0
  # TYPE shex_sorbe_matches counter
  shex_sorbe_matches 0
  # HELP shex_backtrack_branches_by_shape Backtracking branches attributed to this shape
  # TYPE shex_backtrack_branches_by_shape counter
  shex_backtrack_branches_by_shape{shape="Person"} 0
  # HELP shex_checks_by_shape Evaluations per shape (fixpoint re-runs included)
  # TYPE shex_checks_by_shape counter
  shex_checks_by_shape{shape="Person"} 1
  # HELP shex_compiled_steps_by_shape Compiled-DFA transitions attributed to this shape
  # TYPE shex_compiled_steps_by_shape counter
  shex_compiled_steps_by_shape{shape="Person"} 0
  # HELP shex_deriv_steps_by_shape Derivative steps attributed to this shape
  # TYPE shex_deriv_steps_by_shape counter
  shex_deriv_steps_by_shape{shape="Person"} 2
  # HELP shex_fixpoint_flips_by_shape Fixpoint hypotheses on this shape refuted
  # TYPE shex_fixpoint_flips_by_shape counter
  shex_fixpoint_flips_by_shape{shape="Person"} 1
  # HELP shex_sorbe_counter_updates_by_shape SORBE counter updates attributed to this shape
  # TYPE shex_sorbe_counter_updates_by_shape counter
  shex_sorbe_counter_updates_by_shape{shape="Person"} 0
  # TYPE shex_deriv_size_after histogram
  shex_deriv_size_after_bucket{le="1"} 1
  shex_deriv_size_after_bucket{le="8"} 2
  shex_deriv_size_after_bucket{le="+Inf"} 2
  shex_deriv_size_after_sum 8
  shex_deriv_size_after_count 2
  # TYPE shex_deriv_size_before histogram
  shex_deriv_size_before_bucket{le="8"} 1
  shex_deriv_size_before_bucket{le="16"} 2
  shex_deriv_size_before_bucket{le="+Inf"} 2
  shex_deriv_size_before_sum 16
  shex_deriv_size_before_count 2
  # HELP shex_check_seconds_by_node_seconds Self wall time of checks of this focus node
  # TYPE shex_check_seconds_by_node_seconds summary
  shex_check_seconds_by_node_seconds_count{node="<http://example.org/mary>"} 1
  shex_check_seconds_by_node_seconds_sum{node="<http://example.org/mary>"} _
  # HELP shex_check_seconds_by_shape_seconds Self wall time of evaluations of this shape
  # TYPE shex_check_seconds_by_shape_seconds summary
  shex_check_seconds_by_shape_seconds_count{shape="Person"} 1
  shex_check_seconds_by_shape_seconds_sum{shape="Person"} _

Without --profile the exposition is exactly what it was before the
attribution work landed: no labelled families, no resource gauges
(metrics.t keeps that golden); only the memo gauge rides along:

  $ shex-validate --schema person.shex --data people.ttl \
  >   --node http://example.org/mary --shape Person \
  >   --metrics text --quiet 2>/dev/null | grep -cE '\{(shape|node)='
  0
  [1]

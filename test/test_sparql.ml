(* Tests for the SPARQL substrate: evaluator semantics, the shape →
   query translation of §3, and the paper's Example 4 query. *)

open Util
module A = Sparql.Ast
module E = Sparql.Eval

let foaf l = Rdf.Iri.of_string_exn ("http://xmlns.com/foaf/0.1/" ^ l)

let example2_graph =
  graph_of
    [ triple (node "john") (foaf "age") (num 23);
      triple (node "john") (foaf "name") (Rdf.Term.str "John");
      triple (node "john") (foaf "knows") (node "bob");
      triple (node "bob") (foaf "age") (num 34);
      triple (node "bob") (foaf "name") (Rdf.Term.str "Bob");
      triple (node "bob") (foaf "name") (Rdf.Term.str "Robert");
      triple (node "mary") (foaf "age") (num 50);
      triple (node "mary") (foaf "age") (num 65) ]

let solutions g p = E.eval_pattern g E.Solution.empty p
let count g p = List.length (solutions g p)

(* ------------------------------------------------------------------ *)
(* Evaluator                                                          *)
(* ------------------------------------------------------------------ *)

let test_bgp_single () =
  let p = A.bgp [ A.triple (A.v "s") (A.c (Rdf.Term.Iri (foaf "age"))) (A.v "o") ] in
  check_int "4 age triples" 4 (count example2_graph p)

let test_bgp_join_within () =
  (* ?s foaf:age ?a . ?s foaf:name ?n — join on ?s *)
  let p =
    A.bgp
      [ A.triple (A.v "s") (A.c (Rdf.Term.Iri (foaf "age"))) (A.v "a");
        A.triple (A.v "s") (A.c (Rdf.Term.Iri (foaf "name"))) (A.v "n") ]
  in
  (* john: 1×1, bob: 1×2 → 3 solutions *)
  check_int "join cardinality" 3 (count example2_graph p)

let test_bgp_constant_subject () =
  let p =
    A.bgp [ A.triple (A.c (node "mary")) (A.c (Rdf.Term.Iri (foaf "age"))) (A.v "o") ]
  in
  check_int "mary's ages" 2 (count example2_graph p)

let test_bgp_shared_variable () =
  (* ?x ex:p ?x — subject equals object *)
  let g = graph_of [ t3 "a" "p" (node "a"); t3 "a" "p" (node "b") ] in
  let p = A.bgp [ A.triple (A.v "x") (A.c (Rdf.Term.Iri (ex "p"))) (A.v "x") ] in
  check_int "self-loop only" 1 (count g p)

let test_filter_datatype () =
  let p =
    A.Filter
      ( A.E_and
          ( A.E_is_literal (A.E_var "o"),
            A.E_cmp
              ( A.Eq,
                A.E_datatype (A.E_var "o"),
                A.E_const (Rdf.Term.Iri (Rdf.Xsd.iri Rdf.Xsd.String)) ) ),
        A.bgp [ A.triple (A.v "s") (A.v "p") (A.v "o") ] )
  in
  check_int "string objects" 3 (count example2_graph p)

let test_filter_numeric_compare () =
  let p =
    A.Filter
      ( A.E_cmp (A.Gt, A.E_var "o", A.E_int 30),
        A.bgp [ A.triple (A.v "s") (A.c (Rdf.Term.Iri (foaf "age"))) (A.v "o") ] )
  in
  check_int "ages over 30" 3 (count example2_graph p)

let test_filter_error_is_false () =
  (* Comparing an IRI with a number errors → row dropped, not crash. *)
  let p =
    A.Filter
      ( A.E_cmp (A.Gt, A.E_var "o", A.E_int 0),
        A.bgp [ A.triple (A.v "s") (A.c (Rdf.Term.Iri (foaf "knows"))) (A.v "o") ] )
  in
  check_int "error drops row" 0 (count example2_graph p)

let test_union () =
  let arm pred = A.bgp [ A.triple (A.v "s") (A.c (Rdf.Term.Iri (foaf pred))) (A.v "o") ] in
  check_int "union" 5 (count example2_graph (A.Union (arm "age", arm "knows")))

let test_optional () =
  let p =
    A.Optional
      ( A.bgp [ A.triple (A.v "s") (A.c (Rdf.Term.Iri (foaf "age"))) (A.v "a") ],
        A.bgp [ A.triple (A.v "s") (A.c (Rdf.Term.Iri (foaf "knows"))) (A.v "k") ] )
  in
  let sols = solutions example2_graph p in
  check_int "4 rows" 4 (List.length sols);
  let bound_k =
    List.length (List.filter (fun mu -> E.Solution.find "k" mu <> None) sols)
  in
  check_int "only john has knows" 1 bound_k

let test_optional_bound_idiom () =
  (* The paper's !bound trick: subjects with NO foaf:knows. *)
  let p =
    A.Filter
      ( A.E_not (A.E_bound "k"),
        A.Optional
          ( A.Sub_select
              (A.select ~distinct:true [ "s" ]
                 (A.bgp [ A.triple (A.v "s") (A.v "p") (A.v "o") ])),
            A.bgp [ A.triple (A.v "s") (A.c (Rdf.Term.Iri (foaf "knows"))) (A.v "k") ]
          ) )
  in
  check_int "bob and mary" 2 (count example2_graph p)

let test_exists () =
  let p =
    A.Filter
      ( A.E_exists
          (A.bgp [ A.triple (A.v "s") (A.c (Rdf.Term.Iri (foaf "knows"))) (A.v "k") ]),
        A.Sub_select
          (A.select ~distinct:true [ "s" ]
             (A.bgp [ A.triple (A.v "s") (A.v "p") (A.v "o") ])) )
  in
  check_int "only john" 1 (count example2_graph p)

let test_not_exists () =
  let p =
    A.Filter
      ( A.E_not_exists
          (A.bgp [ A.triple (A.v "s") (A.c (Rdf.Term.Iri (foaf "name"))) (A.v "n") ]),
        A.Sub_select
          (A.select ~distinct:true [ "s" ]
             (A.bgp [ A.triple (A.v "s") (A.v "p") (A.v "o") ])) )
  in
  check_int "only mary lacks a name" 1 (count example2_graph p)

let test_subselect_count_having () =
  (* SELECT ?s (COUNT( * ) AS ?c) { ?s foaf:name ?o } GROUP BY ?s HAVING ?c >= 2 *)
  let sel =
    A.select ~group_by:[ "s" ]
      ~aggs:[ (A.Count_star, "c") ]
      ~having:[ A.E_cmp (A.Ge, A.E_var "c", A.E_int 2) ]
      [ "s" ]
      (A.bgp [ A.triple (A.v "s") (A.c (Rdf.Term.Iri (foaf "name"))) (A.v "o") ])
  in
  let sols = E.select example2_graph sel in
  check_int "only bob" 1 (List.length sols);
  match sols with
  | [ mu ] ->
      check_bool "it is bob" true
        (E.Solution.find "s" mu = Some (node "bob"))
  | _ -> Alcotest.fail "expected one solution"

let test_subselect_joins_with_outer () =
  (* The counting subselect restricts an outer pattern through ?s. *)
  let p =
    A.Join
      ( A.bgp [ A.triple (A.v "s") (A.c (Rdf.Term.Iri (foaf "age"))) (A.v "a") ],
        A.Sub_select
          (A.select ~group_by:[ "s" ]
             ~aggs:[ (A.Count_star, "c") ]
             ~having:[ A.E_cmp (A.Eq, A.E_var "c", A.E_int 2) ]
             [ "s" ]
             (A.bgp
                [ A.triple (A.v "s") (A.c (Rdf.Term.Iri (foaf "age"))) (A.v "o") ]))
      )
  in
  (* mary has 2 age triples; outer gives her two rows *)
  check_int "mary twice" 2 (count example2_graph p)

let test_ask () =
  check_bool "ask true" true
    (E.ask example2_graph
       (A.bgp [ A.triple (A.c (node "john")) (A.v "p") (A.v "o") ]));
  check_bool "ask false" false
    (E.ask example2_graph
       (A.bgp [ A.triple (A.c (node "zoe")) (A.v "p") (A.v "o") ]))

(* ------------------------------------------------------------------ *)
(* §3 translation                                                     *)
(* ------------------------------------------------------------------ *)

(* Non-recursive Person shape: age xsd:integer, name xsd:string+,
   knows IRI* (reference replaced by a node-kind test, as recursion is
   untranslatable). *)
let person_shape =
  Shex.Rse.and_all
    [ Shex.Rse.arc_v (Shex.Value_set.Pred (foaf "age")) Shex.Value_set.xsd_integer;
      Shex.Rse.plus
        (Shex.Rse.arc_v (Shex.Value_set.Pred (foaf "name")) Shex.Value_set.xsd_string);
      Shex.Rse.star
        (Shex.Rse.arc_v (Shex.Value_set.Pred (foaf "knows"))
           (Shex.Value_set.Obj_kind Shex.Value_set.Iri_kind)) ]

let test_gen_agrees_with_derivatives () =
  match Sparql.Gen.matching_nodes example2_graph person_shape with
  | Error msg -> Alcotest.fail msg
  | Ok nodes ->
      Alcotest.(check (list term))
        "sparql nodes = derivative nodes"
        (List.filter
           (fun n -> Shex.Deriv.matches n example2_graph person_shape)
           (Rdf.Graph.subjects example2_graph))
        nodes

let test_gen_ask_per_node () =
  List.iter
    (fun (who, expected) ->
      match Sparql.Gen.for_node person_shape (node who) with
      | Error msg -> Alcotest.fail msg
      | Ok q -> (
          match E.run example2_graph q with
          | `Boolean b -> check_bool who expected b
          | `Solutions _ -> Alcotest.fail "expected boolean"))
    [ ("john", true); ("bob", true); ("mary", false) ]

let test_gen_rejects_recursion () =
  let e =
    Shex.Rse.arc_ref (Shex.Value_set.Pred (foaf "knows"))
      (Shex.Label.of_string "Person")
  in
  check_bool "refs rejected" true (Result.is_error (Sparql.Gen.of_shape e));
  check_bool "non-sorbe rejected" true
    (Result.is_error (Sparql.Gen.of_shape example10))

let test_gen_closedness () =
  (* A node with an extra predicate must be rejected even if all
     declared constraints pass (Example 4 misses this; we add it). *)
  let g =
    Rdf.Graph.add (triple (node "john") (ex "extra") (num 1)) example2_graph
  in
  match Sparql.Gen.for_node person_shape (node "john") with
  | Error msg -> Alcotest.fail msg
  | Ok q -> (
      match E.run g q with
      | `Boolean b -> check_bool "extra predicate rejected" false b
      | `Solutions _ -> Alcotest.fail "expected boolean")

let test_gen_absent_optional_predicate () =
  (* bob matches with zero knows arcs (star) — absent branch works. *)
  match Sparql.Gen.for_node person_shape (node "bob") with
  | Error msg -> Alcotest.fail msg
  | Ok q -> (
      match E.run example2_graph q with
      | `Boolean b -> check_bool "bob matches" true b
      | `Solutions _ -> Alcotest.fail "expected boolean")

let test_gen_bounded_optional () =
  (* knows{0,1}: john (1 knows) ok, two knows arcs fail. *)
  let shape =
    Shex.Rse.and_all
      [ Shex.Rse.arc_v (Shex.Value_set.Pred (foaf "age")) Shex.Value_set.xsd_integer;
        Shex.Rse.repeat 0 (Some 1)
          (Shex.Rse.arc_v (Shex.Value_set.Pred (foaf "knows"))
             (Shex.Value_set.Obj_kind Shex.Value_set.Iri_kind)) ]
  in
  let g =
    graph_of
      [ triple (node "x") (foaf "age") (num 1);
        triple (node "x") (foaf "knows") (node "a");
        triple (node "x") (foaf "knows") (node "b") ]
  in
  match Sparql.Gen.for_node shape (node "x") with
  | Error msg -> Alcotest.fail msg
  | Ok q -> (
      match E.run g q with
      | `Boolean b -> check_bool "two knows rejected" false b
      | `Solutions _ -> Alcotest.fail "expected boolean")

let test_gen_pp_renders () =
  match Sparql.Gen.of_shape person_shape with
  | Error msg -> Alcotest.fail msg
  | Ok sel ->
      let text = Sparql.Pp.query_to_string (A.Select_q sel) in
      check_bool "mentions COUNT" true
        (let has_sub sub s =
           let n = String.length s and m = String.length sub in
           let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
           go 0
         in
         has_sub "COUNT(*)" text && has_sub "GROUP BY" text
         && has_sub "NOT EXISTS" text)

(* ------------------------------------------------------------------ *)
(* The paper's Example 4                                              *)
(* ------------------------------------------------------------------ *)

let test_example4_ask () =
  let q = Sparql.Gen.example4_query () in
  (match E.run example2_graph q with
  | `Boolean b -> check_bool "some Person exists" true b
  | `Solutions _ -> Alcotest.fail "expected boolean");
  (* A graph with only mary has no Person. *)
  let mary_only =
    graph_of
      [ triple (node "mary") (foaf "age") (num 50);
        triple (node "mary") (foaf "age") (num 65) ]
  in
  match E.run mary_only q with
  | `Boolean b -> check_bool "no Person" false b
  | `Solutions _ -> Alcotest.fail "expected boolean"

let test_example4_renders () =
  let text = Sparql.Pp.query_to_string (Sparql.Gen.example4_query ()) in
  check_bool "ASK query text" true
    (String.length text > 200
    &&
    let has_sub sub s =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    has_sub "ASK" text && has_sub "HAVING" text && has_sub "UNION" text
    && has_sub "bound" text)

let suites =
  [ ( "sparql.eval",
      [ Alcotest.test_case "single pattern" `Quick test_bgp_single;
        Alcotest.test_case "bgp join" `Quick test_bgp_join_within;
        Alcotest.test_case "constant subject" `Quick
          test_bgp_constant_subject;
        Alcotest.test_case "shared variable" `Quick test_bgp_shared_variable;
        Alcotest.test_case "filter on datatype" `Quick test_filter_datatype;
        Alcotest.test_case "numeric comparison" `Quick
          test_filter_numeric_compare;
        Alcotest.test_case "errors are false" `Quick
          test_filter_error_is_false;
        Alcotest.test_case "union" `Quick test_union;
        Alcotest.test_case "optional" `Quick test_optional;
        Alcotest.test_case "optional/!bound idiom" `Quick
          test_optional_bound_idiom;
        Alcotest.test_case "exists" `Quick test_exists;
        Alcotest.test_case "not exists" `Quick test_not_exists;
        Alcotest.test_case "count + having" `Quick
          test_subselect_count_having;
        Alcotest.test_case "subselect joins outer" `Quick
          test_subselect_joins_with_outer;
        Alcotest.test_case "ask" `Quick test_ask ] );
    ( "sparql.gen",
      [ Alcotest.test_case "agrees with derivatives" `Quick
          test_gen_agrees_with_derivatives;
        Alcotest.test_case "per-node ASK" `Quick test_gen_ask_per_node;
        Alcotest.test_case "recursion rejected" `Quick
          test_gen_rejects_recursion;
        Alcotest.test_case "closedness enforced" `Quick test_gen_closedness;
        Alcotest.test_case "absent optional predicate" `Quick
          test_gen_absent_optional_predicate;
        Alcotest.test_case "bounded optional" `Quick
          test_gen_bounded_optional;
        Alcotest.test_case "query renders" `Quick test_gen_pp_renders ] );
    ( "sparql.example4",
      [ Alcotest.test_case "ASK verdicts" `Quick test_example4_ask;
        Alcotest.test_case "rendering" `Quick test_example4_renders ] ) ]

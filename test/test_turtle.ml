(* Tests for the Turtle lexer/parser/writer and N-Triples. *)

open Util

let parse src =
  match Turtle.Parse.parse_graph src with
  | Ok g -> g
  | Error msg -> Alcotest.fail msg

let parse_err src =
  match Turtle.Parse.parse_graph src with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error msg -> msg

let foaf l = Rdf.Iri.of_string_exn ("http://xmlns.com/foaf/0.1/" ^ l)

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

let test_simple_triple () =
  let g = parse "<http://e.org/s> <http://e.org/p> <http://e.org/o> ." in
  check_int "one triple" 1 (Rdf.Graph.cardinal g);
  check_bool "the triple" true
    (Rdf.Graph.mem
       (Rdf.Triple.make (iri "http://e.org/s")
          (Rdf.Iri.of_string_exn "http://e.org/p")
          (iri "http://e.org/o"))
       g)

let test_prefixes () =
  let g =
    parse
      "@prefix foaf: <http://xmlns.com/foaf/0.1/> .\n\
       @prefix : <http://example.org/> .\n\
       :john foaf:age 23 ."
  in
  check_bool "expanded" true
    (Rdf.Graph.mem (triple (node "john") (foaf "age") (num 23)) g)

let test_sparql_style_directives () =
  let g =
    parse
      "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
       BASE <http://example.org/>\n\
       <john> foaf:age 23 ."
  in
  check_bool "base resolved + prefix" true
    (Rdf.Graph.mem (triple (node "john") (foaf "age") (num 23)) g)

let test_base_resolution () =
  let g = parse "@base <http://example.org/dir/> . <x> <p> <../y> ." in
  check_bool "relative subject" true
    (Rdf.Graph.mem
       (Rdf.Triple.make
          (iri "http://example.org/dir/x")
          (Rdf.Iri.of_string_exn "http://example.org/dir/p")
          (iri "http://example.org/y"))
       g)

(* The paper's Example 2 document, verbatim Turtle. *)
let example2_src =
  "@prefix foaf: <http://xmlns.com/foaf/0.1/> .\n\
   @prefix : <http://example.org/> .\n\
   :john foaf:age 23;\n\
  \      foaf:name \"John\";\n\
  \      foaf:knows :bob .\n\
   :bob foaf:age 34;\n\
  \     foaf:name \"Bob\", \"Robert\" .\n\
   :mary foaf:age 50, 65 .\n"

let test_example2_document () =
  let g = parse example2_src in
  check_int "8 triples" 8 (Rdf.Graph.cardinal g);
  check_bool "bob has two names" true
    (List.length (Rdf.Graph.objects_of (node "bob") (foaf "name") g) = 2);
  check_bool "mary has two ages" true
    (List.length (Rdf.Graph.objects_of (node "mary") (foaf "age") g) = 2)

let test_a_keyword () =
  let g = parse "@prefix : <http://e.org/> . :x a :T ." in
  check_bool "rdf:type" true
    (Rdf.Graph.mem
       (Rdf.Triple.make (iri "http://e.org/x") Rdf.Namespace.Vocab.rdf_type
          (iri "http://e.org/T"))
       g)

let test_literals () =
  let g =
    parse
      "@prefix : <http://e.org/> .\n\
       @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n\
       :x :s \"plain\" ;\n\
      \   :l \"hola\"@es ;\n\
      \   :t \"2015-03-27\"^^xsd:date ;\n\
      \   :i 42 ;\n\
      \   :n -3.14 ;\n\
      \   :d 1.0e6 ;\n\
      \   :b true ;\n\
      \   :f false ."
  in
  check_int "8 triples" 8 (Rdf.Graph.cardinal g);
  let obj p =
    match Rdf.Graph.objects_of (iri "http://e.org/x")
            (Rdf.Iri.of_string_exn ("http://e.org/" ^ p)) g
    with
    | [ Rdf.Term.Literal l ] -> l
    | _ -> Alcotest.fail ("missing literal for " ^ p)
  in
  check_bool "lang" true (Rdf.Literal.lang (obj "l") = Some "es");
  check_bool "date" true (Rdf.Literal.has_datatype (obj "t") Rdf.Xsd.Date);
  check_bool "integer" true (Rdf.Literal.has_datatype (obj "i") Rdf.Xsd.Integer);
  check_bool "decimal" true
    (Rdf.Literal.has_datatype (obj "n") Rdf.Xsd.Decimal);
  check_bool "double" true (Rdf.Literal.has_datatype (obj "d") Rdf.Xsd.Double);
  check_bool "boolean true" true (Rdf.Literal.as_bool (obj "b") = Some true);
  check_bool "boolean false" true (Rdf.Literal.as_bool (obj "f") = Some false)

let test_string_escapes () =
  let g =
    parse "@prefix : <http://e.org/> . :x :p \"a\\\"b\\nc\\td\\\\e\" ."
  in
  match Rdf.Graph.to_list g with
  | [ tr ] -> (
      match Rdf.Triple.obj tr with
      | Rdf.Term.Literal l ->
          check_string "decoded" "a\"b\nc\td\\e" (Rdf.Literal.lexical l)
      | _ -> Alcotest.fail "expected literal")
  | _ -> Alcotest.fail "expected one triple"

let test_unicode_escape () =
  let g = parse "@prefix : <http://e.org/> . :x :p \"caf\\u00e9\" ." in
  match Rdf.Graph.to_list g with
  | [ tr ] -> (
      match Rdf.Triple.obj tr with
      | Rdf.Term.Literal l ->
          check_string "utf8" "caf\xc3\xa9" (Rdf.Literal.lexical l)
      | _ -> Alcotest.fail "expected literal")
  | _ -> Alcotest.fail "expected one triple"

let test_long_strings () =
  let g =
    parse
      "@prefix : <http://e.org/> . :x :p \"\"\"line1\nline2 \"quoted\"\"\"\" ."
  in
  match Rdf.Graph.to_list g with
  | [ tr ] -> (
      match Rdf.Triple.obj tr with
      | Rdf.Term.Literal l ->
          check_string "long string" "line1\nline2 \"quoted\""
            (Rdf.Literal.lexical l)
      | _ -> Alcotest.fail "expected literal")
  | _ -> Alcotest.fail "expected one triple"

let test_blank_nodes () =
  let g =
    parse "@prefix : <http://e.org/> . _:b1 :p _:b2 . _:b1 :q :o ."
  in
  check_int "2 triples" 2 (Rdf.Graph.cardinal g);
  check_bool "same label same node" true
    (List.length (Rdf.Graph.subjects g) = 1)

let test_anon_bnode () =
  let g = parse "@prefix : <http://e.org/> . [] :p :o ." in
  check_int "1 triple" 1 (Rdf.Graph.cardinal g);
  match Rdf.Graph.to_list g with
  | [ tr ] -> check_bool "bnode subject" true
                (Rdf.Term.is_bnode (Rdf.Triple.subject tr))
  | _ -> Alcotest.fail "expected one triple"

let test_bnode_property_list () =
  let g =
    parse
      "@prefix : <http://e.org/> .\n\
       :x :knows [ :name \"Anna\" ; :age 30 ] ."
  in
  check_int "3 triples" 3 (Rdf.Graph.cardinal g);
  (* The bnode is both an object of :knows and the subject of two arcs. *)
  match Rdf.Graph.objects_of (iri "http://e.org/x")
          (Rdf.Iri.of_string_exn "http://e.org/knows") g
  with
  | [ (Rdf.Term.Bnode _ as b) ] ->
      check_int "bnode neighbourhood" 2
        (Rdf.Graph.cardinal (Rdf.Graph.neighbourhood b g))
  | _ -> Alcotest.fail "expected a bnode object"

let test_bnode_property_list_as_subject () =
  let g =
    parse "@prefix : <http://e.org/> . [ :name \"Anna\" ] :knows :x ."
  in
  check_int "2 triples" 2 (Rdf.Graph.cardinal g)

let test_collections () =
  let g = parse "@prefix : <http://e.org/> . :x :list (1 2 3) ." in
  (* 1 arc to the head + 3 cells × (first, rest) = 7 triples *)
  check_int "7 triples" 7 (Rdf.Graph.cardinal g);
  (* The chain must terminate at rdf:nil. *)
  let nil = Rdf.Term.Iri Rdf.Namespace.Vocab.rdf_nil in
  check_bool "ends in nil" true
    (List.exists
       (fun tr -> Rdf.Term.equal (Rdf.Triple.obj tr) nil)
       (Rdf.Graph.to_list g))

let test_empty_collection () =
  let g = parse "@prefix : <http://e.org/> . :x :list () ." in
  check_int "1 triple" 1 (Rdf.Graph.cardinal g);
  match Rdf.Graph.to_list g with
  | [ tr ] ->
      check_bool "object is nil" true
        (Rdf.Term.equal (Rdf.Triple.obj tr)
           (Rdf.Term.Iri Rdf.Namespace.Vocab.rdf_nil))
  | _ -> Alcotest.fail "expected one triple"

let test_comments_and_whitespace () =
  let g =
    parse
      "# leading comment\n@prefix : <http://e.org/> . # inline\n\n:x :p :o . # done"
  in
  check_int "1 triple" 1 (Rdf.Graph.cardinal g)

let test_trailing_semicolon () =
  let g = parse "@prefix : <http://e.org/> . :x :p :o ; ." in
  check_int "1 triple" 1 (Rdf.Graph.cardinal g)

let test_parse_errors () =
  let cases =
    [ ("missing dot", "@prefix : <http://e.org/> . :x :p :o");
      ("unbound prefix", "nope:x <http://e.org/p> <http://e.org/o> .");
      ("literal subject", "@prefix : <http://e.org/> . 23 :p :o .");
      ("unterminated iri", "<http://e.org/x :p :o .");
      ("unterminated string", "@prefix : <http://e.org/> . :x :p \"abc .");
      ("bad escape", "@prefix : <http://e.org/> . :x :p \"a\\qb\" .");
      ("lonely caret", "@prefix : <http://e.org/> . :x :p \"v\"^<t> .") ]
  in
  List.iter
    (fun (name, src) ->
      check_bool name true (String.length (parse_err src) > 0))
    cases

let test_error_position () =
  let msg = parse_err "@prefix : <http://e.org/> .\n:x :p :o" in
  (* Error is on line 2. *)
  check_bool "mentions line 2" true
    (let has_sub sub s =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     has_sub "2:" msg)

(* ------------------------------------------------------------------ *)
(* Writer round-trips                                                 *)
(* ------------------------------------------------------------------ *)

let test_write_roundtrip () =
  let g = parse example2_src in
  let written = Turtle.Write.to_string g in
  let g' = parse written in
  Alcotest.check graph "roundtrip" g g'

let test_write_roundtrip_literals () =
  let src =
    "@prefix : <http://e.org/> .\n\
     :x :s \"he said \\\"hi\\\"\" ; :l \"hola\"@es ; :i 42 ; :b true ;\n\
    \   :d \"2015-03-27\"^^<http://www.w3.org/2001/XMLSchema#date> ."
  in
  let g = parse src in
  Alcotest.check graph "roundtrip" g (parse (Turtle.Write.to_string g))

let test_write_uses_a () =
  let g = parse "@prefix : <http://e.org/> . :x a :T ." in
  let s = Turtle.Write.to_string g in
  check_bool "uses a" true
    (let has_sub sub s =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     has_sub " a " s)

(* ------------------------------------------------------------------ *)
(* N-Triples                                                          *)
(* ------------------------------------------------------------------ *)

let test_ntriples_roundtrip () =
  let g = parse example2_src in
  let nt = Turtle.Ntriples.to_string g in
  match Turtle.Ntriples.strict_parse nt with
  | Ok g' -> Alcotest.check graph "roundtrip" g g'
  | Error msg -> Alcotest.fail msg

let test_ntriples_strict_rejects_turtle () =
  List.iter
    (fun src ->
      check_bool "rejected" true
        (Result.is_error (Turtle.Ntriples.strict_parse src)))
    [ "@prefix : <http://e.org/> . :x :p :o .";
      "<http://e.org/x> <http://e.org/p> 23 .";
      "<http://e.org/x> a <http://e.org/T> .";
      "<http://e.org/x> <http://e.org/p> <http://e.org/o> ; <http://e.org/q> <http://e.org/r> ." ]

let test_ntriples_strict_accepts () =
  let src =
    "<http://e.org/x> <http://e.org/p> \"v\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n\
     _:b <http://e.org/q> \"hola\"@es .\n"
  in
  match Turtle.Ntriples.strict_parse src with
  | Ok g -> check_int "2 triples" 2 (Rdf.Graph.cardinal g)
  | Error msg -> Alcotest.fail msg

let suites =
  [ ( "turtle.parse",
      [ Alcotest.test_case "simple triple" `Quick test_simple_triple;
        Alcotest.test_case "prefixes" `Quick test_prefixes;
        Alcotest.test_case "SPARQL-style directives" `Quick
          test_sparql_style_directives;
        Alcotest.test_case "base resolution" `Quick test_base_resolution;
        Alcotest.test_case "Example 2 document" `Quick
          test_example2_document;
        Alcotest.test_case "a keyword" `Quick test_a_keyword;
        Alcotest.test_case "literal forms" `Quick test_literals;
        Alcotest.test_case "string escapes" `Quick test_string_escapes;
        Alcotest.test_case "unicode escapes" `Quick test_unicode_escape;
        Alcotest.test_case "long strings" `Quick test_long_strings;
        Alcotest.test_case "blank nodes" `Quick test_blank_nodes;
        Alcotest.test_case "anonymous blank node" `Quick test_anon_bnode;
        Alcotest.test_case "bnode property list" `Quick
          test_bnode_property_list;
        Alcotest.test_case "bnode property list subject" `Quick
          test_bnode_property_list_as_subject;
        Alcotest.test_case "collections" `Quick test_collections;
        Alcotest.test_case "empty collection" `Quick test_empty_collection;
        Alcotest.test_case "comments" `Quick test_comments_and_whitespace;
        Alcotest.test_case "trailing semicolon" `Quick
          test_trailing_semicolon;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "error positions" `Quick test_error_position ] );
    ( "turtle.write",
      [ Alcotest.test_case "roundtrip Example 2" `Quick test_write_roundtrip;
        Alcotest.test_case "roundtrip literals" `Quick
          test_write_roundtrip_literals;
        Alcotest.test_case "rdf:type as a" `Quick test_write_uses_a ] );
    ( "turtle.ntriples",
      [ Alcotest.test_case "canonical roundtrip" `Quick
          test_ntriples_roundtrip;
        Alcotest.test_case "strict rejects Turtle" `Quick
          test_ntriples_strict_rejects_turtle;
        Alcotest.test_case "strict accepts N-Triples" `Quick
          test_ntriples_strict_accepts ] ) ]

(* Unit tests for the regular shape expression algebra: the §4
   simplification rules, derived operators, nullability, and printing. *)

open Util
open Shex

let a1 = arc_num "a" [ 1 ]
let b12 = arc_num "b" [ 1; 2 ]

(* §4 simplification rules *)

let test_or_simplification () =
  Alcotest.check rse "∅ | x = x" a1 (Rse.or_ Rse.empty a1);
  Alcotest.check rse "x | ∅ = x" a1 (Rse.or_ a1 Rse.empty);
  Alcotest.check rse "x | x = x" a1 (Rse.or_ a1 a1)

let test_and_simplification () =
  Alcotest.check rse "∅ ‖ x = ∅" Rse.empty (Rse.and_ Rse.empty a1);
  Alcotest.check rse "x ‖ ∅ = ∅" Rse.empty (Rse.and_ a1 Rse.empty);
  Alcotest.check rse "ε ‖ x = x" a1 (Rse.and_ Rse.epsilon a1);
  Alcotest.check rse "x ‖ ε = x" a1 (Rse.and_ a1 Rse.epsilon)

let test_star_simplification () =
  Alcotest.check rse "∅* = ε" Rse.epsilon (Rse.star Rse.empty);
  Alcotest.check rse "ε* = ε" Rse.epsilon (Rse.star Rse.epsilon);
  Alcotest.check rse "(x*)* = x*" (Rse.star a1) (Rse.star (Rse.star a1))

let test_not_simplification () =
  Alcotest.check rse "¬¬x = x" a1 (Rse.not_ (Rse.not_ a1))

let test_raw_constructors_do_not_simplify () =
  check_bool "raw or" false
    (Rse.equal (Rse.Raw.or_ Rse.empty a1) a1);
  check_bool "raw and" false
    (Rse.equal (Rse.Raw.and_ Rse.epsilon a1) a1);
  check_int "raw star stacks" 3 (Rse.size (Rse.Raw.star (Rse.Raw.star a1)))

(* Derived operators *)

let test_plus () =
  (* e+ = e ‖ e* *)
  Alcotest.check rse "plus" (Rse.and_ a1 (Rse.star a1)) (Rse.plus a1)

let test_opt () =
  Alcotest.check rse "opt" (Rse.or_ a1 Rse.epsilon) (Rse.opt a1)

let test_repeat () =
  Alcotest.check rse "{0,0} = ε" Rse.epsilon (Rse.repeat 0 (Some 0) a1);
  Alcotest.check rse "{1,1} = e" a1 (Rse.repeat 1 (Some 1) a1);
  Alcotest.check rse "{0,1} = e?" (Rse.opt a1) (Rse.repeat 0 (Some 1) a1);
  Alcotest.check rse "{2,2} = e ‖ e" (Rse.and_ a1 a1)
    (Rse.repeat 2 (Some 2) a1);
  Alcotest.check rse "{0,} = e*" (Rse.star a1) (Rse.repeat 0 None a1);
  Alcotest.check rse "{1,} = e+ (modulo assoc)"
    (Rse.and_ (Rse.star a1) a1)
    (Rse.repeat 1 None a1);
  Alcotest.check_raises "negative min"
    (Invalid_argument "Rse.repeat: negative minimum") (fun () ->
      ignore (Rse.repeat (-1) None a1));
  Alcotest.check_raises "max < min"
    (Invalid_argument "Rse.repeat: max < min") (fun () ->
      ignore (Rse.repeat 2 (Some 1) a1))

(* Nullability (ν, §6) *)

let test_nullable () =
  check_bool "ν(∅)" false (Rse.nullable Rse.empty);
  check_bool "ν(ε)" true (Rse.nullable Rse.epsilon);
  check_bool "ν(arc)" false (Rse.nullable a1);
  check_bool "ν(e*)" true (Rse.nullable (Rse.star a1));
  check_bool "ν(a ‖ b*)" false (Rse.nullable example5);
  check_bool "ν(a* ‖ b*)" true
    (Rse.nullable (Rse.and_ (Rse.star a1) (Rse.star b12)));
  check_bool "ν(a | ε)" true (Rse.nullable (Rse.opt a1));
  check_bool "ν(a | b)" false (Rse.nullable (Rse.or_ a1 b12));
  check_bool "ν(¬ε)" false (Rse.nullable (Rse.not_ Rse.epsilon));
  check_bool "ν(¬arc)" true (Rse.nullable (Rse.not_ a1))

(* Structure observations *)

let test_size_height () =
  check_int "size atom" 1 (Rse.size a1);
  check_int "size ex5" 4 (Rse.size example5);
  check_int "height ex5" 3 (Rse.height example5);
  check_bool "height <= size" true (Rse.height example10 <= Rse.size example10)

let test_refs () =
  let person = Label.of_string "Person" in
  let e =
    Rse.and_ a1 (Rse.star (Rse.arc_ref (Value_set.pred_iri "http://example.org/knows") person))
  in
  check_bool "has_ref" true (Rse.has_ref e);
  check_bool "no ref" false (Rse.has_ref example5);
  check_int "refs" 1 (Label.Set.cardinal (Rse.refs e))

let test_inverse_not_flags () =
  let inv = Rse.arc_v ~inverse:true (Value_set.pred_iri "http://example.org/p") Value_set.Obj_any in
  check_bool "has_inverse" true (Rse.has_inverse (Rse.and_ a1 inv));
  check_bool "no inverse" false (Rse.has_inverse example5);
  check_bool "has_not" true (Rse.has_not (Rse.and_ a1 (Rse.not_ b12)));
  check_bool "no not" false (Rse.has_not example5)

let test_arcs () =
  check_int "ex5 two arcs" 2 (List.length (Rse.arcs example5));
  check_int "ex10 two arcs" 2 (List.length (Rse.arcs example10))

let test_pp () =
  let show e = Rse.to_string e in
  check_bool "epsilon prints" true (show Rse.epsilon = "\xce\xb5");
  check_bool "empty prints" true (show Rse.empty = "\xe2\x88\x85");
  (* And binds tighter than Or; stars parenthesise their body. *)
  let s = show example5 in
  check_bool "ex5 contains star-parens" true
    (String.length s > 0
    &&
    let has_sub sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    has_sub ")*")

let test_equal_compare () =
  check_bool "equal refl" true (Rse.equal example5 example5);
  check_bool "not equal" false (Rse.equal example5 example10);
  check_bool "compare consistent" true
    (Rse.compare example5 example5 = 0
    && Rse.compare example5 example10 <> 0)

let suites =
  [ ( "rse.simplify",
      [ Alcotest.test_case "or rules" `Quick test_or_simplification;
        Alcotest.test_case "and rules" `Quick test_and_simplification;
        Alcotest.test_case "star rules" `Quick test_star_simplification;
        Alcotest.test_case "not rules" `Quick test_not_simplification;
        Alcotest.test_case "raw constructors" `Quick
          test_raw_constructors_do_not_simplify ] );
    ( "rse.derived",
      [ Alcotest.test_case "plus" `Quick test_plus;
        Alcotest.test_case "opt" `Quick test_opt;
        Alcotest.test_case "repeat ranges" `Quick test_repeat ] );
    ( "rse.observe",
      [ Alcotest.test_case "nullable" `Quick test_nullable;
        Alcotest.test_case "size and height" `Quick test_size_height;
        Alcotest.test_case "refs" `Quick test_refs;
        Alcotest.test_case "inverse/not flags" `Quick test_inverse_not_flags;
        Alcotest.test_case "arcs" `Quick test_arcs;
        Alcotest.test_case "printing" `Quick test_pp;
        Alcotest.test_case "equality and order" `Quick test_equal_compare ] )
  ]

(* Tests for canonical serialization. *)

open Util

let b name = Rdf.Term.bnode name
let p name = ex name

let test_ground_graph_stable () =
  let g = graph_of [ t3 "a" "p" (num 1); t3 "b" "q" (num 2) ] in
  check_bool "same text twice" true
    (String.equal (Turtle.Canonical.to_string g) (Turtle.Canonical.to_string g));
  check_bool "equal to itself" true (Turtle.Canonical.equal g g)

let test_renamed_bnodes_same_text () =
  let mk n1 n2 =
    Rdf.Graph.of_list
      [ Rdf.Triple.make (b n1) (p "p") (num 1);
        Rdf.Triple.make (b n1) (p "q") (b n2);
        Rdf.Triple.make (b n2) (p "r") (Rdf.Term.str "leaf") ]
  in
  let g1 = mk "x" "y" and g2 = mk "alpha" "beta" in
  check_string "identical canonical text" (Turtle.Canonical.to_string g1)
    (Turtle.Canonical.to_string g2);
  check_bool "canonical equal" true (Turtle.Canonical.equal g1 g2)

let test_different_graphs_differ () =
  let g1 = Rdf.Graph.of_list [ Rdf.Triple.make (b "x") (p "p") (num 1) ] in
  let g2 = Rdf.Graph.of_list [ Rdf.Triple.make (b "x") (p "p") (num 2) ] in
  check_bool "different" false (Turtle.Canonical.equal g1 g2)

let test_symmetric_twins () =
  (* Two indistinguishable bnodes: any labelling gives the same text,
     so renamings agree. *)
  let twins names =
    Rdf.Graph.of_list
      (List.map (fun n -> Rdf.Triple.make (b n) (p "p") (num 1)) names)
  in
  check_bool "twins canonical-equal" true
    (Turtle.Canonical.equal (twins [ "u"; "v" ]) (twins [ "s"; "t" ]))

let test_cycle_rotation_same_text () =
  let cycle names =
    match names with
    | [ n1; n2; n3 ] ->
        Rdf.Graph.of_list
          [ Rdf.Triple.make (b n1) (p "next") (b n2);
            Rdf.Triple.make (b n2) (p "next") (b n3);
            Rdf.Triple.make (b n3) (p "next") (b n1) ]
    | _ -> assert false
  in
  check_string "rotated cycles"
    (Turtle.Canonical.to_string (cycle [ "a"; "b"; "c" ]))
    (Turtle.Canonical.to_string (cycle [ "q"; "r"; "s" ]))

let test_canonical_matches_isomorphism () =
  (* Canonical equality agrees with the isomorphism decision. *)
  let pairs =
    [ ( Rdf.Graph.of_list [ Rdf.Triple.make (b "x") (p "p") (b "x") ],
        Rdf.Graph.of_list [ Rdf.Triple.make (b "x") (p "p") (b "y") ] );
      ( Rdf.Graph.of_list [ Rdf.Triple.make (b "x") (p "p") (num 1) ],
        Rdf.Graph.of_list [ Rdf.Triple.make (b "q") (p "p") (num 1) ] ) ]
  in
  List.iter
    (fun (g1, g2) ->
      check_bool "agrees" true
        (Bool.equal
           (Turtle.Canonical.equal g1 g2)
           (Rdf.Isomorphism.isomorphic g1 g2)))
    pairs

let test_canonical_is_isomorphic_to_input () =
  let g =
    Rdf.Graph.of_list
      [ Rdf.Triple.make (b "x") (p "p") (b "y");
        Rdf.Triple.make (b "y") (p "p") (b "x");
        Rdf.Triple.make (node "root") (p "q") (b "x") ]
  in
  check_bool "isomorphic" true
    (Rdf.Isomorphism.isomorphic g (Turtle.Canonical.canonicalize g))

let suites =
  [ ( "rdf.canonical",
      [ Alcotest.test_case "ground graphs stable" `Quick
          test_ground_graph_stable;
        Alcotest.test_case "renamed bnodes agree" `Quick
          test_renamed_bnodes_same_text;
        Alcotest.test_case "different graphs differ" `Quick
          test_different_graphs_differ;
        Alcotest.test_case "symmetric twins" `Quick test_symmetric_twins;
        Alcotest.test_case "cycle rotations agree" `Quick
          test_cycle_rotation_same_text;
        Alcotest.test_case "agrees with isomorphism" `Quick
          test_canonical_matches_isomorphism;
        Alcotest.test_case "canonical form is isomorphic" `Quick
          test_canonical_is_isomorphic_to_input ] ) ]

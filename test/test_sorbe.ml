(* Tests for the SORBE subset: detection, conversion, and the counting
   matcher's agreement with the derivative matcher. *)

open Util
open Shex

let a1 = arc_num "a" [ 1 ]
let b12 = arc_num "b" [ 1; 2 ]
let c_any = Rse.arc_v (Value_set.Pred (ex "c")) Value_set.Obj_any

let interval mn mx = { Sorbe.min = mn; max = mx }

let analyze e =
  match Sorbe.of_rse e with
  | Some s -> s
  | None -> Alcotest.fail (Format.asprintf "not SORBE: %a" Rse.pp e)

let intervals e = List.map (fun c -> c.Sorbe.card) (analyze e)

let test_detection_basic () =
  Alcotest.(check int) "single arc" 1 (List.length (analyze a1));
  check_bool "{1,1}" true (intervals a1 = [ interval 1 (Some 1) ]);
  check_bool "star {0,∞}" true
    (intervals (Rse.star a1) = [ interval 0 None ]);
  check_bool "plus {1,∞}" true
    (intervals (Rse.plus a1) = [ interval 1 None ]);
  check_bool "opt {0,1}" true
    (intervals (Rse.opt a1) = [ interval 0 (Some 1) ]);
  check_bool "epsilon" true (analyze Rse.epsilon = [])

let test_detection_composed () =
  let e = Rse.and_all [ a1; Rse.star b12; Rse.opt c_any ] in
  Alcotest.(check int) "three constraints" 3 (List.length (analyze e))

let test_detection_repeat_merges () =
  (* repeat expands into multiple copies of the same arc; the analysis
     must merge them back into one interval. *)
  check_bool "{2,3}" true
    (intervals (Rse.repeat 2 (Some 3) b12) = [ interval 2 (Some 3) ]);
  check_bool "{3,}" true
    (intervals (Rse.repeat 3 None b12) = [ interval 3 None ])

let test_detection_rejects () =
  check_bool "alternative of distinct arcs" true
    (Sorbe.of_rse (Rse.or_ a1 b12) = None);
  check_bool "shared predicate, different values" true
    (Sorbe.of_rse (Rse.and_ (arc_num "a" [ 1 ]) (arc_num "a" [ 2 ])) = None);
  check_bool "negation" true (Sorbe.of_rse (Rse.not_ a1) = None);
  check_bool "empty" true (Sorbe.of_rse Rse.empty = None);
  check_bool "nested star" true
    (Sorbe.of_rse (Rse.star (Rse.and_ a1 b12)) = None)

let test_example5_is_sorbe () =
  (* Example 5 (a→1 ‖ (b→{1,2})⋆) is single-occurrence. *)
  Alcotest.(check int) "two constraints" 2 (List.length (analyze example5))

let test_example10_is_not_sorbe () =
  (* The balance checker is genuinely not SORBE. *)
  check_bool "not sorbe" true (Sorbe.of_rse example10 = None)

let test_to_rse_roundtrip () =
  let e = Rse.and_all [ a1; Rse.star b12 ] in
  let back = Sorbe.to_rse (analyze e) in
  (* The round-trip need not be syntactically identical, but it must
     be SORBE again with the same intervals. *)
  check_bool "same intervals" true (intervals back = intervals e)

let test_counting_matcher () =
  List.iter
    (fun (g, expected) ->
      check_bool "verdict" expected
        (Sorbe.matches (node "n") g (analyze example5)))
    [ (example8_graph, true);
      (example12_graph, false);
      (graph_of [ t3 "n" "a" (num 1) ], true);
      (graph_of [ t3 "n" "b" (num 1) ], false);
      (Rdf.Graph.empty, false) ]

let test_counting_agrees_with_deriv () =
  let shapes =
    [ example5;
      Rse.and_all [ a1; Rse.plus b12 ];
      Rse.and_all [ Rse.opt a1; Rse.repeat 1 (Some 2) b12 ];
      Rse.star b12 ]
  in
  let graphs =
    [ Rdf.Graph.empty;
      example8_graph;
      example12_graph;
      graph_of [ t3 "n" "a" (num 1); t3 "n" "b" (num 2) ];
      graph_of [ t3 "n" "b" (num 1); t3 "n" "b" (num 2) ];
      graph_of [ t3 "n" "a" (num 1); t3 "n" "c" (num 1) ] ]
  in
  List.iter
    (fun e ->
      let s = analyze e in
      List.iter
        (fun g ->
          check_bool
            (Format.asprintf "%a" Rse.pp e)
            (Deriv.matches (node "n") g e)
            (Sorbe.matches (node "n") g s))
        graphs)
    shapes

let test_counting_obj_mismatch () =
  (* A triple owned by a constraint but failing the value test fails
     the whole match (closed semantics). *)
  let s = analyze (Rse.star b12) in
  check_bool "b out of range" false
    (Sorbe.matches (node "n") (graph_of [ t3 "n" "b" (num 7) ]) s)

let test_overlapping_stem_refused () =
  (* The applicability edge the oracle's Extended mode probes:
     interval merging is only sound for arc-equal or
     predicate-disjoint constraint pairs, and a predicate stem that
     covers a singleton predicate is neither.  The analysis must
     refuse such shapes (so Auto falls back to derivatives) while
     still accepting genuinely disjoint stems. *)
  let stem prefix =
    Rse.arc_v (Value_set.Pred_stem prefix) Value_set.Obj_any
  in
  check_bool "overlapping stem refused" true
    (Sorbe.of_rse (Rse.and_ a1 (Rse.star (stem "http://example.org/")))
    = None);
  check_bool "stem overlapping itself refused" true
    (Sorbe.of_rse
       (Rse.and_ (stem "http://example.org/") (Rse.star (stem "http://example.org/a")))
    = None);
  check_bool "disjoint stem accepted" true
    (Sorbe.of_rse (Rse.and_ a1 (Rse.star (stem "http://other.org/")))
    <> None)

let test_overlapping_stem_auto_agrees () =
  (* On a shape SORBE refuses, the Auto dispatch must agree with the
     reference derivative engine on both verdicts. *)
  let stem_any =
    Rse.arc_v (Value_set.Pred_stem "http://example.org/") Value_set.Obj_any
  in
  let label = Label.of_string "S" in
  let schema =
    Schema.make_exn [ (label, Rse.and_ a1 (Rse.star stem_any)) ]
  in
  (* Accept: a→1 feeds the counted arc, p→m the stem star (a→1 also
     matches the stem, so the decomposition is genuinely ambiguous).
     Reject: a→2 only matches the stem, leaving a→{1} unmatched. *)
  let good = graph_of [ t3 "n" "a" (num 1); t3 "n" "p" (node "m") ] in
  let bad = graph_of [ t3 "n" "a" (num 2) ] in
  List.iter
    (fun (g, expect) ->
      List.iter
        (fun engine ->
          let session = Validate.session ~engine schema g in
          check_bool "engines agree" expect
            (Validate.check_bool session (node "n") label))
        [ Validate.Derivatives; Validate.Auto; Validate.Backtracking ])
    [ (good, true); (bad, false) ]

let test_counting_with_refs () =
  let person = Label.of_string "P" in
  let s =
    analyze (Rse.star (Rse.arc_ref (Value_set.Pred (ex "knows")) person))
  in
  let g = graph_of [ t3 "n" "knows" (node "m") ] in
  check_bool "ref accepted by callback" true
    (Sorbe.matches ~check_ref:(fun _ _ -> true) (node "n") g s);
  check_bool "ref refused by callback" false
    (Sorbe.matches ~check_ref:(fun _ _ -> false) (node "n") g s)

let suites =
  [ ( "sorbe",
      [ Alcotest.test_case "basic detection" `Quick test_detection_basic;
        Alcotest.test_case "composed detection" `Quick
          test_detection_composed;
        Alcotest.test_case "repeat merges intervals" `Quick
          test_detection_repeat_merges;
        Alcotest.test_case "rejections" `Quick test_detection_rejects;
        Alcotest.test_case "Example 5 is SORBE" `Quick
          test_example5_is_sorbe;
        Alcotest.test_case "Example 10 is not SORBE" `Quick
          test_example10_is_not_sorbe;
        Alcotest.test_case "to_rse roundtrip" `Quick test_to_rse_roundtrip;
        Alcotest.test_case "counting matcher" `Quick test_counting_matcher;
        Alcotest.test_case "agrees with derivatives" `Quick
          test_counting_agrees_with_deriv;
        Alcotest.test_case "object mismatch fails" `Quick
          test_counting_obj_mismatch;
        Alcotest.test_case "shape references" `Quick test_counting_with_refs;
        Alcotest.test_case "overlapping predicate stems refused" `Quick
          test_overlapping_stem_refused;
        Alcotest.test_case "auto falls back on overlapping stems" `Quick
          test_overlapping_stem_auto_agrees
      ] ) ]

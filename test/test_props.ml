(* Property-based tests (qcheck): random regular shape expressions and
   random neighbourhoods, checking the invariants that tie the three
   matchers (derivatives, backtracking, enumeration) together. *)

open Util
open Shex

(* ------------------------------------------------------------------ *)
(* Generators                                                         *)
(* ------------------------------------------------------------------ *)

(* Universe: predicates {a, b, c} × integer values {1, 2, 3} at node n.
   Small enough for the exponential backtracking oracle, rich enough to
   exercise overlaps between value sets. *)

let preds = [ "a"; "b"; "c" ]
let values = [ 1; 2; 3 ]

let all_triples =
  List.concat_map
    (fun p -> List.map (fun v -> t3 "n" p (num v)) values)
    preds

let gen_triple = QCheck.Gen.oneofl all_triples

let gen_graph =
  QCheck.Gen.(
    list_size (int_bound 5) gen_triple >|= fun ts -> Rdf.Graph.of_list ts)

(* Random expressions built with the smart constructors.  Arc value
   sets are non-empty subsets of the value universe. *)
let gen_arc =
  QCheck.Gen.(
    oneofl preds >>= fun p ->
    list_size (int_range 1 3) (oneofl values) >>= fun vs ->
    return (arc_num p (List.sort_uniq Int.compare vs)))

let gen_rse =
  QCheck.Gen.(
    sized
    @@ fix (fun self size ->
           if size <= 1 then
             frequency
               [ (6, gen_arc); (1, return Rse.epsilon);
                 (1, return Rse.empty) ]
           else
             frequency
               [ (2, gen_arc);
                 (2, self (size - 1) >|= Rse.star);
                 ( 3,
                   self (size / 2) >>= fun e1 ->
                   self (size / 2) >|= fun e2 -> Rse.and_ e1 e2 );
                 ( 3,
                   self (size / 2) >>= fun e1 ->
                   self (size / 2) >|= fun e2 -> Rse.or_ e1 e2 );
                 (1, self (size - 1) >|= Rse.opt) ]))

let arb_rse = QCheck.make ~print:Rse.to_string gen_rse

let arb_graph =
  QCheck.make
    ~print:(fun g -> Format.asprintf "%a" Rdf.Graph.pp g)
    gen_graph

let arb_rse_graph = QCheck.pair arb_rse arb_graph

(* Keep the backtracking oracle tractable. *)
let small_enough g = Rdf.Graph.cardinal g <= 5

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

let count = 500

let prop_deriv_equals_backtrack =
  QCheck.Test.make ~count ~name:"derivatives ≡ backtracking (Fig. 1)"
    arb_rse_graph (fun (e, g) ->
      QCheck.assume (small_enough g);
      Bool.equal
        (Deriv.matches (node "n") g e)
        (Backtrack.matches (node "n") g e))

let prop_deriv_equals_enumeration =
  QCheck.Test.make ~count ~name:"derivatives ≡ enumerated Sn[[e]]"
    arb_rse_graph (fun (e, g) ->
      QCheck.assume (small_enough g);
      match Semantics.mem ~node:(node "n") g e with
      | Ok verdict -> Bool.equal verdict (Deriv.matches (node "n") g e)
      | Error _ -> QCheck.assume_fail ())

let prop_order_independence =
  (* Consuming the neighbourhood in any order yields the same verdict. *)
  QCheck.Test.make ~count
    ~name:"derivative matching is consumption-order independent"
    (QCheck.triple arb_rse arb_graph QCheck.int)
    (fun (e, g, seed) ->
      QCheck.assume (small_enough g);
      let dts =
        List.map Neigh.out (Rdf.Graph.to_list (Rdf.Graph.neighbourhood (node "n") g))
      in
      let shuffled =
        let st = Random.State.make [| seed |] in
        let arr = Array.of_list dts in
        let n = Array.length arr in
        for i = n - 1 downto 1 do
          let j = Random.State.int st (i + 1) in
          let tmp = arr.(i) in
          arr.(i) <- arr.(j);
          arr.(j) <- tmp
        done;
        Array.to_list arr
      in
      Bool.equal
        (Rse.nullable (Deriv.deriv_graph dts e))
        (Rse.nullable (Deriv.deriv_graph shuffled e)))

let prop_nullable_iff_matches_empty =
  QCheck.Test.make ~count ~name:"ν(e) ⇔ e matches the empty graph" arb_rse
    (fun e ->
      Bool.equal (Rse.nullable e)
        (Deriv.matches (node "n") Rdf.Graph.empty e))

let prop_raw_ctors_same_verdict =
  (* §4 simplification changes sizes, never verdicts. *)
  QCheck.Test.make ~count:200
    ~name:"raw constructors give the same verdict (E5 soundness)"
    arb_rse_graph (fun (e, g) ->
      QCheck.assume (Rdf.Graph.cardinal g <= 4);
      Bool.equal
        (Deriv.matches (node "n") g e)
        (Deriv.matches ~ctors:Rse.raw_ctors (node "n") g e))

let prop_smart_never_bigger =
  QCheck.Test.make ~count ~name:"smart derivative ≤ raw derivative size"
    (QCheck.pair arb_rse QCheck.(int_bound (List.length all_triples - 1)))
    (fun (e, idx) ->
      let dt = Neigh.out (List.nth all_triples idx) in
      Rse.size (Deriv.deriv dt e)
      <= Rse.size (Deriv.deriv ~ctors:Rse.raw_ctors dt e))

let prop_deriv_not_nullable_after_epsilon =
  (* ∂t(ε) = ∅ generalises: deriving any nullable-only expression by a
     triple it cannot match yields a non-matching expression. *)
  QCheck.Test.make ~count ~name:"∂t(e) nullable ⇒ e matches {t}"
    (QCheck.pair arb_rse QCheck.(int_bound (List.length all_triples - 1)))
    (fun (e, idx) ->
      let tr = List.nth all_triples idx in
      let d = Deriv.deriv (Neigh.out tr) e in
      Bool.equal (Rse.nullable d)
        (Deriv.matches (node "n") (Rdf.Graph.singleton tr) e))

let prop_star_absorbs =
  (* e* matches any neighbourhood that can be partitioned into e's —
     in particular (e⋆)⋆ behaves like e⋆. *)
  QCheck.Test.make ~count ~name:"(e⋆)⋆ ≡ e⋆" arb_rse_graph (fun (e, g) ->
      QCheck.assume (small_enough g);
      let s = Rse.star e in
      Bool.equal
        (Deriv.matches (node "n") g s)
        (Deriv.matches (node "n") g (Rse.star s)))

let prop_or_commutes =
  QCheck.Test.make ~count ~name:"e₁|e₂ ≡ e₂|e₁"
    (QCheck.triple arb_rse arb_rse arb_graph) (fun (e1, e2, g) ->
      QCheck.assume (small_enough g);
      Bool.equal
        (Deriv.matches (node "n") g (Rse.or_ e1 e2))
        (Deriv.matches (node "n") g (Rse.or_ e2 e1)))

let prop_and_commutes =
  QCheck.Test.make ~count ~name:"e₁‖e₂ ≡ e₂‖e₁"
    (QCheck.triple arb_rse arb_rse arb_graph) (fun (e1, e2, g) ->
      QCheck.assume (small_enough g);
      Bool.equal
        (Deriv.matches (node "n") g (Rse.and_ e1 e2))
        (Deriv.matches (node "n") g (Rse.and_ e2 e1)))

let prop_negation_involutive =
  QCheck.Test.make ~count ~name:"¬¬e ≡ e under matching" arb_rse_graph
    (fun (e, g) ->
      QCheck.assume (small_enough g);
      Bool.equal
        (Deriv.matches (node "n") g e)
        (Deriv.matches (node "n") g (Rse.not_ (Rse.not_ e))))

let prop_negation_complements =
  QCheck.Test.make ~count ~name:"¬e matches ⇔ e does not" arb_rse_graph
    (fun (e, g) ->
      QCheck.assume (small_enough g);
      Bool.equal
        (not (Deriv.matches (node "n") g e))
        (Deriv.matches (node "n") g (Rse.not_ e)))

let prop_sorbe_agrees =
  QCheck.Test.make ~count:100 ~max_gen:10_000
    ~name:"SORBE counting ≡ derivatives" arb_rse_graph (fun (e, g) ->
      match Sorbe.of_rse e with
      | None -> QCheck.assume_fail ()
      | Some s ->
          Bool.equal
            (Deriv.matches (node "n") g e)
            (Sorbe.matches (node "n") g s))

let prop_repeat_counts =
  (* e{m,n} over a single arc matches exactly the neighbourhoods with
     between m and n matching triples. *)
  QCheck.Test.make ~count
    ~name:"repeat over one arc counts triples"
    (QCheck.triple
       (QCheck.make QCheck.Gen.(int_bound 3))
       (QCheck.make QCheck.Gen.(int_bound 3))
       (QCheck.make QCheck.Gen.(int_bound 3)))
    (fun (m, extra, k) ->
      let n = m + extra in
      let e = Rse.repeat m (Some n) (arc_num "b" [ 1; 2; 3 ]) in
      let g = graph_of (List.init k (fun j -> t3 "n" "b" (num (j + 1)))) in
      Bool.equal (k >= m && k <= n) (Deriv.matches (node "n") g e))

let prop_size_positive =
  QCheck.Test.make ~count ~name:"size ≥ 1 and height ≤ size" arb_rse
    (fun e -> Rse.size e >= 1 && Rse.height e <= Rse.size e)

let prop_validate_engines_agree =
  (* Schema validation with the derivative, backtracking and
     auto-compiled engines agrees on random reference-free schemas. *)
  QCheck.Test.make ~count:200 ~name:"validate engines agree"
    arb_rse_graph (fun (e, g) ->
      QCheck.assume (small_enough g);
      let l = Label.of_string "S" in
      let schema = Schema.make_exn [ (l, e) ] in
      let verdict engine =
        Validate.check_bool
          (Validate.session ~engine schema g)
          (node "n") l
      in
      let d = verdict Validate.Derivatives in
      Bool.equal d (verdict Validate.Backtracking)
      && Bool.equal d (verdict Validate.Auto))

let prop_open_up_monotone =
  (* Opening a shape only adds matches, never removes them. *)
  QCheck.Test.make ~count ~name:"open_up is monotone" arb_rse_graph
    (fun (e, g) ->
      QCheck.assume (small_enough g);
      QCheck.assume (not (Rse.has_not e));
      (not (Deriv.matches (node "n") g e))
      || Deriv.matches (node "n") g (Rse.open_up e))

let prop_open_up_ignores_unmentioned =
  (* An open shape's verdict is unchanged by triples with predicates
     outside its vocabulary. *)
  QCheck.Test.make ~count:200 ~name:"open_up ignores foreign predicates"
    arb_rse_graph (fun (e, g) ->
      QCheck.assume (small_enough g);
      QCheck.assume (not (Rse.has_not e));
      let open_e = Rse.open_up e in
      let noisy =
        Rdf.Graph.add (t3 "n" "zzz-foreign" (num 1)) g
      in
      Bool.equal
        (Deriv.matches (node "n") g open_e)
        (Deriv.matches (node "n") noisy open_e))

let prop_turtle_roundtrip =
  QCheck.Test.make ~count:200 ~name:"turtle write/parse roundtrip"
    arb_graph (fun g ->
      match Turtle.Parse.parse_graph (Turtle.Write.to_string g) with
      | Ok g' -> Rdf.Graph.equal g g'
      | Error _ -> false)

let prop_ntriples_roundtrip =
  QCheck.Test.make ~count:200 ~name:"n-triples roundtrip" arb_graph
    (fun g ->
      match Turtle.Ntriples.strict_parse (Turtle.Ntriples.to_string g) with
      | Ok g' -> Rdf.Graph.equal g g'
      | Error _ -> false)

(* Literal lexical forms over a hostile character set: C0 controls
   (including CR, LF, BS, FF), DEL, quotes and backslashes.  The
   writers must escape all of these (raw controls are unparseable or
   corrupted by CRLF-normalising transports); the lexer must decode
   them back to the original bytes. *)
let hostile_chars =
  [ '\000'; '\001'; '\n'; '\r'; '\t'; '\b'; '\012'; '\027'; '\127';
    '"'; '\\'; 'a'; 'z'; ' ' ]

let gen_hostile_literal_graph =
  QCheck.Gen.(
    let gen_string =
      string_size ~gen:(oneofl hostile_chars) (int_bound 8)
    in
    let gen_triple =
      oneofl preds >>= fun p ->
      gen_string >|= fun s -> t3 "n" p (Rdf.Term.str s)
    in
    list_size (int_range 1 4) gen_triple >|= Rdf.Graph.of_list)

let arb_hostile_literal_graph =
  QCheck.make
    ~print:(fun g -> Format.asprintf "%a" Rdf.Graph.pp g)
    gen_hostile_literal_graph

let prop_turtle_control_char_roundtrip =
  QCheck.Test.make ~count:300
    ~name:"turtle roundtrip of control-character literals"
    arb_hostile_literal_graph (fun g ->
      match Turtle.Parse.parse_graph (Turtle.Write.to_string g) with
      | Ok g' -> Rdf.Graph.equal g g'
      | Error _ -> false)

let prop_ntriples_control_char_roundtrip =
  QCheck.Test.make ~count:300
    ~name:"n-triples roundtrip of control-character literals"
    arb_hostile_literal_graph (fun g ->
      match Turtle.Ntriples.strict_parse (Turtle.Ntriples.to_string g) with
      | Ok g' -> Rdf.Graph.equal g g'
      | Error _ -> false)

(* Because the writers escape every control character, the only line
   breaks in a serialised document are structural — so rewriting them
   to CRLF (a Windows checkout) or bare CR (a pre-OSX transport) must
   not change the parsed graph.  A leading comment line exercises the
   comment skipper on each ending too. *)
let with_line_endings nl doc =
  String.concat nl (String.split_on_char '\n' doc)

let prop_line_ending_invariance =
  QCheck.Test.make ~count:200
    ~name:"turtle parsing is invariant under CRLF / CR line endings"
    (QCheck.pair arb_graph arb_hostile_literal_graph)
    (fun (g1, g2) ->
      let g =
        Rdf.Graph.fold Rdf.Graph.add g1 g2
      in
      let doc = "# header comment\n" ^ Turtle.Write.to_string g in
      List.for_all
        (fun nl ->
          match Turtle.Parse.parse_graph (with_line_endings nl doc) with
          | Ok g' -> Rdf.Graph.equal g g'
          | Error _ -> false)
        [ "\r\n"; "\r" ])

let prop_isomorphism_bnode_rename =
  (* Renaming all blank-node labels preserves isomorphism. *)
  QCheck.Test.make ~count:100 ~name:"isomorphic under bnode renaming"
    (QCheck.pair arb_graph QCheck.small_nat) (fun (g, salt) ->
      (* Swap some subjects for blank nodes deterministically. *)
      let to_bnode prefix t =
        match t with
        | Rdf.Term.Iri iri
          when Hashtbl.hash (Rdf.Iri.to_string iri) mod 2 = 0 ->
            Rdf.Term.bnode
              (prefix ^ string_of_int (Hashtbl.hash (Rdf.Iri.to_string iri)))
        | t -> t
      in
      let rename prefix g =
        Rdf.Graph.fold
          (fun tr acc ->
            match
              Rdf.Triple.make_opt
                (to_bnode prefix (Rdf.Triple.subject tr))
                (Rdf.Triple.predicate tr)
                (to_bnode prefix (Rdf.Triple.obj tr))
            with
            | Some tr' -> Rdf.Graph.add tr' acc
            | None -> acc)
          g Rdf.Graph.empty
      in
      ignore salt;
      Rdf.Isomorphism.isomorphic (rename "x" g) (rename "y" g))

let prop_canonical_agrees_with_renaming =
  (* The canonical text is invariant under blank-node relabelling. *)
  QCheck.Test.make ~count:60 ~name:"canonical text invariant under renaming"
    arb_graph (fun g ->
      let to_bnode prefix t =
        match t with
        | Rdf.Term.Iri iri
          when Hashtbl.hash (Rdf.Iri.to_string iri) mod 2 = 0 ->
            Rdf.Term.bnode
              (prefix ^ string_of_int (Hashtbl.hash (Rdf.Iri.to_string iri)))
        | t -> t
      in
      let rename prefix g =
        Rdf.Graph.fold
          (fun tr acc ->
            match
              Rdf.Triple.make_opt
                (to_bnode prefix (Rdf.Triple.subject tr))
                (Rdf.Triple.predicate tr)
                (to_bnode prefix (Rdf.Triple.obj tr))
            with
            | Some tr' -> Rdf.Graph.add tr' acc
            | None -> acc)
          g Rdf.Graph.empty
      in
      String.equal
        (Turtle.Canonical.to_string (rename "x" g))
        (Turtle.Canonical.to_string (rename "ylonger" g)))

let prop_skolem_roundtrip =
  QCheck.Test.make ~count:100 ~name:"skolemize/unskolemize roundtrip"
    arb_graph (fun g ->
      Rdf.Graph.equal g (Rdf.Skolem.unskolemize (Rdf.Skolem.skolemize g)))

(* All neighbourhoods over the finite triple universe of up to
   [max_card] triples — a complete decision procedure for semantic
   equivalence of expressions over that universe. *)
let all_neighbourhoods max_card =
  let rec subsets = function
    | [] -> [ [] ]
    | t :: rest ->
        let subs = subsets rest in
        subs @ List.filter_map
                 (fun s -> if List.length s < max_card then Some (t :: s) else None)
                 subs
  in
  List.map Rdf.Graph.of_list (subsets all_triples)

let semantically_equal e1 e2 =
  List.for_all
    (fun g ->
      Bool.equal
        (Deriv.matches (node "n") g e1)
        (Deriv.matches (node "n") g e2))
    (all_neighbourhoods 4)

let prop_shexj_roundtrip =
  (* Random (reference-free) schemas survive the JSON interchange up
     to semantics.  Structural equality is too strong: the or-factoring
     normalisation is not associative, so re-normalising on import can
     factor subgroups differently (always semantics-preserving, which
     is exactly what this property decides exhaustively over the
     finite triple universe). *)
  QCheck.Test.make ~count:60 ~name:"ShExJ roundtrip preserves semantics"
    arb_rse (fun e ->
      match Schema.make [ (Label.of_string "S", e) ] with
      | Error _ -> QCheck.assume_fail ()
      | Ok schema -> (
          match Shexc.Shexj.import (Shexc.Shexj.export schema) with
          | Error _ -> false
          | Ok schema' ->
              semantically_equal
                (Schema.find_exn schema (Label.of_string "S"))
                (Schema.find_exn schema' (Label.of_string "S"))))

let prop_shexj_verdict_preserved =
  QCheck.Test.make ~count:100
    ~name:"ShExJ roundtrip preserves verdicts" arb_rse_graph
    (fun (e, g) ->
      QCheck.assume (small_enough g);
      match Schema.make [ (Label.of_string "S", e) ] with
      | Error _ -> QCheck.assume_fail ()
      | Ok schema -> (
          match Shexc.Shexj.import (Shexc.Shexj.export schema) with
          | Error _ -> false
          | Ok schema' ->
              let l = Label.of_string "S" in
              Bool.equal
                (Validate.check_bool (Validate.session schema g) (node "n") l)
                (Validate.check_bool (Validate.session schema' g) (node "n")
                   l)))

(* ------------------------------------------------------------------ *)
(* Graph bulk set-ops ≡ per-triple folds                               *)
(* ------------------------------------------------------------------ *)

(* A wider universe than [gen_graph]'s single-node one: many subjects
   with links between them, so set-op results carry real subject and
   object indexes to get wrong.  [union]/[diff] pick between an
   incremental path and a bulk [of_set] reindex by the [small_delta]
   size heuristic, so each property pins both branches explicitly. *)
let gen_wide_triple =
  QCheck.Gen.(
    let subj = int_bound 9 >|= fun k -> node (Printf.sprintf "n%d" k) in
    let obj = oneof [ subj; (int_bound 3 >|= num) ] in
    subj >>= fun s ->
    oneofl [ "a"; "b"; "c"; "d" ] >>= fun p ->
    obj >|= fun o -> Rdf.Triple.make s (ex p) o)

let gen_wide_graph size_gen =
  QCheck.Gen.(list_size size_gen gen_wide_triple >|= Rdf.Graph.of_list)

let arb_graph_pair =
  QCheck.make
    ~print:(fun (g1, g2) ->
      Format.asprintf "%a@.--@.%a" Rdf.Graph.pp g1 Rdf.Graph.pp g2)
    QCheck.Gen.(
      (* One side large, the other either tiny (delta branch) or
         comparable (bulk branch). *)
      pair
        (gen_wide_graph (int_bound 60))
        (oneof
           [ gen_wide_graph (int_bound 4); gen_wide_graph (int_bound 60) ]))

(* The secondary indexes agree with the triple set — the invariant the
   bulk constructors must re-establish without per-triple [add]s. *)
let well_indexed g =
  let trs = Rdf.Graph.to_list g in
  List.for_all
    (fun n ->
      List.equal Rdf.Triple.equal
        (Rdf.Graph.to_list (Rdf.Graph.neighbourhood n g))
        (List.filter
           (fun tr -> Rdf.Term.equal (Rdf.Triple.subject tr) n)
           trs)
      && List.equal Rdf.Triple.equal
           (Rdf.Graph.to_list (Rdf.Graph.triples_with_object n g))
           (List.filter
              (fun tr -> Rdf.Term.equal (Rdf.Triple.obj tr) n)
              trs))
    (Rdf.Graph.nodes g)

let union_fold g1 g2 = Rdf.Graph.fold Rdf.Graph.add g2 g1
let diff_fold g1 g2 = Rdf.Graph.fold Rdf.Graph.remove g2 g1

let inter_fold g1 g2 =
  Rdf.Graph.fold
    (fun tr acc ->
      if Rdf.Graph.mem tr g2 then Rdf.Graph.add tr acc else acc)
    g1 Rdf.Graph.empty

(* True when [union g1 g2] (resp. [diff g1 g2]) takes the incremental
   small-delta path; its negation is the bulk-reindex path. *)
let delta_branch d g =
  8 * Rdf.Graph.cardinal d <= Rdf.Graph.cardinal g

let prop_bulk_union_fold =
  QCheck.Test.make ~count:150 ~name:"bulk union ≡ fold, well-indexed"
    arb_graph_pair (fun (g1, g2) ->
      let u = Rdf.Graph.union g1 g2 in
      Rdf.Graph.equal u (union_fold g1 g2) && well_indexed u)

let prop_union_both_branches =
  QCheck.Test.make ~count:150 ~name:"union agrees across the size heuristic"
    arb_graph_pair (fun (g1, g2) ->
      let small, large =
        if Rdf.Graph.cardinal g1 >= Rdf.Graph.cardinal g2 then (g2, g1)
        else (g1, g2)
      in
      (* Force the opposite branch by padding the small side with the
         large one's triples: a self-union is size-balanced, so the
         bulk path runs even when (g1, g2) took the delta path. *)
      let balanced = union_fold large small in
      Rdf.Graph.equal
        (Rdf.Graph.union balanced large)
        (union_fold balanced large)
      && (delta_branch small large
          || Rdf.Graph.equal (Rdf.Graph.union small large)
               (union_fold small large)))

let prop_bulk_diff_fold =
  QCheck.Test.make ~count:150 ~name:"bulk diff ≡ fold, well-indexed"
    arb_graph_pair (fun (g1, g2) ->
      let d = Rdf.Graph.diff g1 g2 in
      let d' = Rdf.Graph.diff g2 g1 in
      Rdf.Graph.equal d (diff_fold g1 g2)
      && Rdf.Graph.equal d' (diff_fold g2 g1)
      && well_indexed d && well_indexed d')

let prop_bulk_inter_fold =
  QCheck.Test.make ~count:150 ~name:"bulk inter ≡ fold, well-indexed"
    arb_graph_pair (fun (g1, g2) ->
      let i = Rdf.Graph.inter g1 g2 in
      Rdf.Graph.equal i (inter_fold g1 g2) && well_indexed i)

let prop_bulk_filter_fold =
  QCheck.Test.make ~count:150 ~name:"bulk filter ≡ fold, well-indexed"
    arb_graph_pair (fun (g1, g2) ->
      let keep tr = Rdf.Graph.mem tr g2 || Rdf.Term.is_literal (Rdf.Triple.obj tr) in
      let f = Rdf.Graph.filter keep g1 in
      Rdf.Graph.equal f
        (Rdf.Graph.fold
           (fun tr acc -> if keep tr then Rdf.Graph.add tr acc else acc)
           g1 Rdf.Graph.empty)
      && well_indexed f)

let prop_columnar_roundtrip =
  QCheck.Test.make ~count:150 ~name:"columnar of_graph/to_graph roundtrip"
    arb_graph_pair (fun (g1, g2) ->
      (* Union first so the round-tripped graph exercises the bulk
         constructors' output, not just generator output. *)
      let g = Rdf.Graph.union g1 g2 in
      let c = Rdf.Columnar.of_graph g in
      let g' = Rdf.Columnar.to_graph c in
      Rdf.Graph.equal g g' && well_indexed g'
      && List.for_all
           (fun n ->
             List.equal Shex.Neigh.equal
               (Neigh.of_node ~include_inverse:true n g)
               (Neigh.of_columnar ~include_inverse:true n c))
           (Rdf.Graph.nodes g))

let tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_deriv_equals_backtrack;
      prop_deriv_equals_enumeration;
      prop_order_independence;
      prop_nullable_iff_matches_empty;
      prop_raw_ctors_same_verdict;
      prop_smart_never_bigger;
      prop_deriv_not_nullable_after_epsilon;
      prop_star_absorbs;
      prop_or_commutes;
      prop_and_commutes;
      prop_negation_involutive;
      prop_negation_complements;
      prop_sorbe_agrees;
      prop_repeat_counts;
      prop_size_positive;
      prop_validate_engines_agree;
      prop_open_up_monotone;
      prop_open_up_ignores_unmentioned;
      prop_turtle_roundtrip;
      prop_ntriples_roundtrip;
      prop_turtle_control_char_roundtrip;
      prop_ntriples_control_char_roundtrip;
      prop_line_ending_invariance;
      prop_isomorphism_bnode_rename;
      prop_canonical_agrees_with_renaming;
      prop_skolem_roundtrip;
      prop_shexj_roundtrip;
      prop_shexj_verdict_preserved;
      prop_bulk_union_fold;
      prop_union_both_branches;
      prop_bulk_diff_fold;
      prop_bulk_inter_fold;
      prop_bulk_filter_fold;
      prop_columnar_roundtrip ]

let suites = [ ("properties", tests) ]

(* Shared helpers for the test suites: compact constructors for the
   paper's example graphs and expressions. *)

let iri = Rdf.Term.iri
let i s = Rdf.Iri.of_string_exn s

(* The paper's abstract examples use bare names (n, a, b) and numbers
   (1, 2); we map names into the ex: namespace and numbers to
   xsd:integer literals. *)
let ex name = Rdf.Iri.of_string_exn ("http://example.org/" ^ name)
let node name = Rdf.Term.Iri (ex name)
let num k = Rdf.Term.int k
let triple s p o = Rdf.Triple.make s p o
let t3 s p o = triple (node s) (ex p) o

let graph_of triples = Rdf.Graph.of_list triples

(* Arc vp → vo with singleton predicate and finite values. *)
let arc_num p values =
  Shex.Rse.arc_v (Shex.Value_set.Pred (ex p))
    (Shex.Value_set.obj_terms (List.map num values))

(* Example 5: a→1 ‖ (b→{1,2})* *)
let example5 =
  Shex.Rse.and_ (arc_num "a" [ 1 ]) (Shex.Rse.star (arc_num "b" [ 1; 2 ]))

(* Example 10: (a→{1,2} ‖ b→{1,2})*.  The paper's PDF prints "|", but
   the stated meaning (same number of a-arcs and b-arcs) and the stated
   derivative (b→{1,2} ‖ e) only hold for ‖. *)
let example10 =
  Shex.Rse.star (Shex.Rse.and_ (arc_num "a" [ 1; 2 ]) (arc_num "b" [ 1; 2 ]))

(* Σgn of Example 8: {⟨n,a,1⟩, ⟨n,b,1⟩, ⟨n,b,2⟩} *)
let example8_graph =
  graph_of [ t3 "n" "a" (num 1); t3 "n" "b" (num 1); t3 "n" "b" (num 2) ]

(* Example 12's graph: {⟨n,a,1⟩, ⟨n,a,2⟩, ⟨n,b,1⟩} *)
let example12_graph =
  graph_of [ t3 "n" "a" (num 1); t3 "n" "a" (num 2); t3 "n" "b" (num 1) ]

let rse = Alcotest.testable Shex.Rse.pp Shex.Rse.equal
let term = Alcotest.testable Rdf.Term.pp Rdf.Term.equal
let graph = Alcotest.testable Rdf.Graph.pp Rdf.Graph.equal
let typing = Alcotest.testable Shex.Typing.pp Shex.Typing.equal

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

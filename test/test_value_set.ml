(* Direct unit tests for predicate and object value sets. *)

open Util
open Shex

let p name = ex name

let test_pred_membership () =
  check_bool "singleton" true
    (Value_set.pred_mem (Value_set.Pred (p "a")) (p "a"));
  check_bool "singleton miss" false
    (Value_set.pred_mem (Value_set.Pred (p "a")) (p "b"));
  check_bool "enumeration" true
    (Value_set.pred_mem (Value_set.Pred_in [ p "a"; p "b" ]) (p "b"));
  check_bool "stem" true
    (Value_set.pred_mem
       (Value_set.Pred_stem "http://example.org/")
       (p "anything"));
  check_bool "stem miss" false
    (Value_set.pred_mem
       (Value_set.Pred_stem "http://other.org/")
       (p "x"));
  check_bool "any" true (Value_set.pred_mem Value_set.Pred_any (p "z"))

let test_pred_complement () =
  let compl =
    Value_set.Pred_compl [ Value_set.Pred (p "a"); Value_set.Pred (p "b") ]
  in
  check_bool "excluded" false (Value_set.pred_mem compl (p "a"));
  check_bool "included" true (Value_set.pred_mem compl (p "z"));
  let nested = Value_set.Pred_compl [ compl ] in
  check_bool "double complement excluded" false
    (Value_set.pred_mem nested (p "z"));
  check_bool "double complement included" true
    (Value_set.pred_mem nested (p "a"))

let test_pred_disjoint () =
  check_bool "distinct singletons" true
    (Value_set.pred_disjoint (Value_set.Pred (p "a")) (Value_set.Pred (p "b")));
  check_bool "same singleton" false
    (Value_set.pred_disjoint (Value_set.Pred (p "a")) (Value_set.Pred (p "a")));
  check_bool "overlapping enums" false
    (Value_set.pred_disjoint
       (Value_set.Pred_in [ p "a"; p "b" ])
       (Value_set.Pred_in [ p "b"; p "c" ]));
  check_bool "disjoint stems" true
    (Value_set.pred_disjoint
       (Value_set.Pred_stem "http://a.org/")
       (Value_set.Pred_stem "http://b.org/"));
  check_bool "nested stems overlap" false
    (Value_set.pred_disjoint
       (Value_set.Pred_stem "http://a.org/")
       (Value_set.Pred_stem "http://a.org/sub/"));
  check_bool "any overlaps" false
    (Value_set.pred_disjoint Value_set.Pred_any (Value_set.Pred (p "a")));
  (* a complement is disjoint from what it excludes *)
  check_bool "complement vs excluded" true
    (Value_set.pred_disjoint
       (Value_set.Pred_compl [ Value_set.Pred (p "a") ])
       (Value_set.Pred (p "a")));
  check_bool "complement vs other" false
    (Value_set.pred_disjoint
       (Value_set.Pred_compl [ Value_set.Pred (p "a") ])
       (Value_set.Pred (p "b")))

let test_obj_membership () =
  check_bool "any" true (Value_set.obj_mem Value_set.Obj_any (num 1));
  check_bool "value set hit" true
    (Value_set.obj_mem (Value_set.obj_terms [ num 1; num 2 ]) (num 2));
  check_bool "value set miss" false
    (Value_set.obj_mem (Value_set.obj_terms [ num 1 ]) (num 2));
  check_bool "datatype" true
    (Value_set.obj_mem Value_set.xsd_integer (num 3));
  check_bool "datatype rejects malformed" false
    (Value_set.obj_mem Value_set.xsd_integer
       (Rdf.Term.Literal (Rdf.Literal.typed Rdf.Xsd.Integer "nope")));
  check_bool "datatype rejects iri" false
    (Value_set.obj_mem Value_set.xsd_integer (node "x"));
  check_bool "opaque datatype" true
    (Value_set.obj_mem
       (Value_set.Obj_datatype_iri (ex "custom"))
       (Rdf.Term.Literal
          (Rdf.Literal.make ~datatype:(ex "custom") "anything")))

let test_obj_membership_value_space () =
  (* Oracle-found divergence (corpus/oracle-seed231.repro): value-set
     membership is value-based for numeric literals, like SPARQL's
     [=], so "01"^^xsd:integer belongs to {1} — while [obj_equal]
     stays syntactic. *)
  let padded = Rdf.Term.Literal (Rdf.Literal.typed Rdf.Xsd.Integer "01") in
  check_bool "padded integer in {1}" true
    (Value_set.obj_mem (Value_set.obj_terms [ num 1 ]) padded);
  check_bool "decimal 1.0 in {1}" true
    (Value_set.obj_mem (Value_set.obj_terms [ num 1 ])
       (Rdf.Term.Literal (Rdf.Literal.typed Rdf.Xsd.Decimal "1.0")));
  check_bool "string \"1\" not in {1}" false
    (Value_set.obj_mem (Value_set.obj_terms [ num 1 ]) (Rdf.Term.str "1"));
  check_bool "obj_equal stays syntactic" false
    (Value_set.obj_equal
       (Value_set.obj_terms [ num 1 ])
       (Value_set.obj_terms [ padded ]))

let test_obj_kinds () =
  let mem k t = Value_set.obj_mem (Value_set.Obj_kind k) t in
  check_bool "iri kind" true (mem Value_set.Iri_kind (node "x"));
  check_bool "bnode kind" true
    (mem Value_set.Bnode_kind (Rdf.Term.bnode "b"));
  check_bool "literal kind" true (mem Value_set.Literal_kind (num 1));
  check_bool "nonliteral iri" true
    (mem Value_set.Non_literal_kind (node "x"));
  check_bool "nonliteral bnode" true
    (mem Value_set.Non_literal_kind (Rdf.Term.bnode "b"));
  check_bool "nonliteral literal" false
    (mem Value_set.Non_literal_kind (num 1))

let test_obj_stems_and_combinators () =
  check_bool "stem hit" true
    (Value_set.obj_mem
       (Value_set.Obj_stem "http://example.org/people/")
       (iri "http://example.org/people/p7"));
  check_bool "stem miss" false
    (Value_set.obj_mem
       (Value_set.Obj_stem "http://example.org/people/")
       (iri "http://example.org/places/x"));
  check_bool "stem rejects literal" false
    (Value_set.obj_mem (Value_set.Obj_stem "http://") (num 1));
  let either =
    Value_set.Obj_or [ Value_set.xsd_integer; Value_set.xsd_string ]
  in
  check_bool "or left" true (Value_set.obj_mem either (num 1));
  check_bool "or right" true
    (Value_set.obj_mem either (Rdf.Term.str "x"));
  check_bool "or miss" false
    (Value_set.obj_mem either (Rdf.Term.Literal (Rdf.Literal.boolean true)));
  check_bool "not" true
    (Value_set.obj_mem (Value_set.Obj_not Value_set.xsd_integer)
       (Rdf.Term.str "x"));
  check_bool "not excluded" false
    (Value_set.obj_mem (Value_set.Obj_not Value_set.xsd_integer) (num 1))

let test_equality () =
  check_bool "pred refl" true
    (Value_set.pred_equal (Value_set.Pred (p "a")) (Value_set.Pred (p "a")));
  check_bool "pred diff" false
    (Value_set.pred_equal (Value_set.Pred (p "a")) Value_set.Pred_any);
  check_bool "obj refl" true
    (Value_set.obj_equal
       (Value_set.obj_terms [ num 1 ])
       (Value_set.obj_terms [ num 1 ]));
  check_bool "obj order matters" false
    (Value_set.obj_equal
       (Value_set.obj_terms [ num 1; num 2 ])
       (Value_set.obj_terms [ num 2; num 1 ]))

let test_pp () =
  let show_pred p = Format.asprintf "%a" Value_set.pp_pred p in
  let show_obj o = Format.asprintf "%a" Value_set.pp_obj o in
  check_bool "pred any" true (show_pred Value_set.Pred_any = ".");
  check_bool "obj kind" true
    (show_obj (Value_set.Obj_kind Value_set.Iri_kind) = "IRI");
  check_bool "datatype prints xsd name" true
    (show_obj Value_set.xsd_integer = "xsd:integer");
  check_bool "complement prints" true
    (String.length (show_pred (Value_set.Pred_compl [ Value_set.Pred (p "a") ])) > 0)

let suites =
  [ ( "value_set",
      [ Alcotest.test_case "predicate membership" `Quick
          test_pred_membership;
        Alcotest.test_case "predicate complement" `Quick
          test_pred_complement;
        Alcotest.test_case "predicate disjointness" `Quick
          test_pred_disjoint;
        Alcotest.test_case "object membership" `Quick test_obj_membership;
        Alcotest.test_case "value-space membership" `Quick
          test_obj_membership_value_space;
        Alcotest.test_case "node kinds" `Quick test_obj_kinds;
        Alcotest.test_case "stems and combinators" `Quick
          test_obj_stems_and_combinators;
        Alcotest.test_case "equality" `Quick test_equality;
        Alcotest.test_case "printing" `Quick test_pp ] ) ]

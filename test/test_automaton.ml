(* The compiled automaton engine (lib/automaton): hash-cons
   canonicalisation, DFA/derivative agreement, suite-wide engine
   equivalence, and cache behaviour. *)

open Util
open Shex
module H = Shex_automaton.Hrse
module Dfa = Shex_automaton.Dfa

let () = Shex_automaton.Engine.install ()

(* ------------------------------------------------------------------ *)
(* Hash-cons canonicalisation: ACI-equal terms get one id             *)
(* ------------------------------------------------------------------ *)

let same msg a b = check_bool msg true (H.equal a b)
let distinct msg a b = check_bool msg false (H.equal a b)

let test_hcons_aci () =
  let t = H.create () in
  let a = H.atom t 0 and b = H.atom t 1 and c = H.atom t 2 in
  same "‖ commutes" (H.and_ t a b) (H.and_ t b a);
  same "‖ associates"
    (H.and_ t a (H.and_ t b c))
    (H.and_ t (H.and_ t a b) c);
  same "| commutes" (H.or_ t a b) (H.or_ t b a);
  same "| associates" (H.or_ t a (H.or_ t b c)) (H.or_ t (H.or_ t a b) c);
  same "| is idempotent" (H.or_ t a a) a;
  same "| dedups deep" (H.or_ t a (H.or_ t b a)) (H.or_ t a b);
  (* ‖ is a bag operator: duplicates are kept, but still canonical. *)
  distinct "‖ keeps duplicates" (H.and_ t a a) a;
  same "‖ duplicate bags canonical"
    (H.and_ t a (H.and_ t b a))
    (H.and_ t (H.and_ t a a) b)

let test_hcons_units () =
  let t = H.create () in
  let a = H.atom t 0 in
  same "ε ‖ e = e" (H.and_ t (H.epsilon t) a) a;
  same "∅ ‖ e = ∅" (H.and_ t (H.empty t) a) (H.empty t);
  same "∅ | e = e" (H.or_ t (H.empty t) a) a;
  same "∅* = ε" (H.star t (H.empty t)) (H.epsilon t);
  same "ε* = ε" (H.star t (H.epsilon t)) (H.epsilon t);
  same "(e*)* = e*" (H.star t (H.star t a)) (H.star t a);
  same "¬¬e = e" (H.not_ t (H.not_ t a)) a;
  (* ε | e drops ε exactly when e is already nullable. *)
  same "ε | e* = e*" (H.or_ t (H.epsilon t) (H.star t a)) (H.star t a);
  distinct "ε | a keeps ε" (H.or_ t (H.epsilon t) a) a

let test_hcons_factoring () =
  let t = H.create () in
  let a = H.atom t 0 and x = H.atom t 1 and y = H.atom t 2 in
  same "(C ‖ X) | (C ‖ Y) = C ‖ (X | Y)"
    (H.or_ t (H.and_ t a x) (H.and_ t a y))
    (H.and_ t a (H.or_ t x y));
  (* Physical equality: rebuilding the same term twice interns once. *)
  let e1 = H.or_ t (H.and_ t a (H.star t x)) y in
  let e2 = H.or_ t y (H.and_ t (H.star t x) a) in
  check_bool "physically equal" true (e1 == e2);
  check_int "ids equal" (H.hash e1) (H.hash e2)

let test_hcons_nullable () =
  let t = H.create () in
  let a = H.atom t 0 and b = H.atom t 1 in
  let n e = e.H.nullable in
  check_bool "ν(∅)" false (n (H.empty t));
  check_bool "ν(ε)" true (n (H.epsilon t));
  check_bool "ν(a)" false (n a);
  check_bool "ν(a*)" true (n (H.star t a));
  check_bool "ν(a ‖ b*)" false (n (H.and_ t a (H.star t b)));
  check_bool "ν(a | ε)" true (n (H.or_ t a (H.epsilon t)));
  check_bool "ν(¬a)" true (n (H.not_ t a));
  check_bool "ν(¬ε)" false (n (H.not_ t (H.epsilon t)))

(* ------------------------------------------------------------------ *)
(* DFA vs derivative engine on the paper's worked shapes              *)
(* ------------------------------------------------------------------ *)

let agree_on shape graphs =
  let auto = Dfa.compile shape in
  List.iter
    (fun g ->
      check_bool
        (Format.asprintf "agree on %a" Rdf.Graph.pp g)
        (Deriv.matches (node "n") g shape)
        (Dfa.matches auto (node "n") g))
    graphs

let test_dfa_examples () =
  agree_on example5 [ example8_graph; example12_graph; graph_of [] ];
  agree_on example10
    [ example8_graph; example12_graph;
      graph_of [ t3 "n" "a" (num 1); t3 "n" "b" (num 2) ] ];
  (* Negation disables dead-state pruning but must stay equivalent. *)
  agree_on (Rse.not_ example5) [ example8_graph; example12_graph ];
  agree_on
    (Rse.and_ (Rse.star (arc_num "a" [ 1; 2 ])) (Rse.not_ (arc_num "b" [ 1 ])))
    [ example8_graph; example12_graph; graph_of [ t3 "n" "a" (num 2) ] ]

let test_dfa_cache_reuse () =
  (* Matching many nodes with identical neighbourhood structure must
     hit the shared transition table, not rebuild derivatives. *)
  let auto = Dfa.compile example5 in
  let graphs =
    List.init 50 (fun k ->
        ignore k;
        example8_graph)
  in
  List.iter (fun g -> check_bool "match" true (Dfa.matches auto (node "n") g)) graphs;
  let s = Dfa.stats auto in
  check_bool "some transitions built" true (s.Dfa.misses > 0);
  check_bool "cache reused across nodes" true (s.Dfa.hits > 3 * s.Dfa.misses);
  check_bool "state table stays small" true (s.Dfa.states < 10)

(* ------------------------------------------------------------------ *)
(* Engine equivalence on the conformance suite                         *)
(* ------------------------------------------------------------------ *)

let suite_entries () =
  let read path =
    In_channel.with_open_bin (Filename.concat "suite" path)
      In_channel.input_all
  in
  match Json.of_string (read "manifest.json") with
  | Error msg -> failwith ("suite manifest: " ^ msg)
  | Ok manifest -> (
      match Json.find_list "tests" manifest with
      | None -> failwith "suite manifest has no tests"
      | Some entries ->
          List.map
            (fun entry ->
              let get field =
                match Json.find_string field entry with
                | Some s -> s
                | None -> failwith ("manifest entry missing " ^ field)
              in
              (get "name", get "schema", get "data"))
            entries)

let test_suite_equivalence () =
  let read path =
    In_channel.with_open_bin (Filename.concat "suite" path)
      In_channel.input_all
  in
  let loaded = Hashtbl.create 8 in
  List.iter
    (fun (name, schema_path, data_path) ->
      if not (Hashtbl.mem loaded (schema_path, data_path)) then begin
        Hashtbl.replace loaded (schema_path, data_path) ();
        let schema =
          match Shexc.Shexc_parser.parse_schema (read schema_path) with
          | Ok s -> s
          | Error msg -> failwith (schema_path ^ ": " ^ msg)
        in
        let graph =
          match Turtle.Parse.parse_graph (read data_path) with
          | Ok g -> g
          | Error msg -> failwith (data_path ^ ": " ^ msg)
        in
        (* Full cross product of nodes × labels: the compiled session
           must produce the same typing as the derivative session. *)
        let run engine =
          Validate.validate_graph (Validate.session ~engine schema graph)
        in
        Alcotest.check typing
          (name ^ ": Compiled ≡ Derivatives")
          (run Validate.Derivatives) (run Validate.Compiled)
      end)
    (suite_entries ())

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_dfa_equals_deriv =
  QCheck.Test.make ~count:500
    ~name:"compiled DFA ≡ derivatives (random shapes/graphs)"
    Test_props.arb_rse_graph
    (fun (e, g) ->
      let auto = Dfa.compile e in
      Bool.equal (Deriv.matches (node "n") g e) (Dfa.matches auto (node "n") g))

let gen_profile =
  QCheck.Gen.(
    int_range 1 40 >>= fun n_persons ->
    int_range 0 10 >>= fun invalid_tenths ->
    int_range 0 4 >>= fun knows_degree ->
    int_range 0 10_000 >|= fun seed ->
    { Workload.Foaf_gen.n_persons;
      invalid_fraction = float_of_int invalid_tenths /. 10.0;
      knows_degree;
      seed })

let arb_profile =
  QCheck.make
    ~print:(fun p ->
      Printf.sprintf "{persons=%d; invalid=%.1f; degree=%d; seed=%d}"
        p.Workload.Foaf_gen.n_persons p.Workload.Foaf_gen.invalid_fraction
        p.Workload.Foaf_gen.knows_degree p.Workload.Foaf_gen.seed)
    gen_profile

let prop_engines_agree_on_portals =
  QCheck.Test.make ~count:60
    ~name:"Compiled ≡ Derivatives on random FOAF portals"
    arb_profile
    (fun profile ->
      let { Workload.Foaf_gen.graph; _ } = Workload.Foaf_gen.generate profile in
      let schema, _ = Workload.Foaf_gen.person_schema () in
      let run engine =
        Validate.validate_graph (Validate.session ~engine schema graph)
      in
      Typing.equal (run Validate.Derivatives) (run Validate.Compiled))

(* ------------------------------------------------------------------ *)
(* Session plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let test_session_stats () =
  let schema, person = Workload.Foaf_gen.person_schema () in
  let { Workload.Foaf_gen.graph; valid; _ } =
    Workload.Foaf_gen.generate
      { Workload.Foaf_gen.n_persons = 100;
        invalid_fraction = 0.1;
        knows_degree = 3;
        seed = 7 }
  in
  let session = Validate.session ~engine:Validate.Compiled schema graph in
  let result = Validate.validate_graph session in
  check_int "typed persons" (List.length valid) (Typing.cardinal result);
  (match Validate.compiled_stats session with
  | None -> Alcotest.fail "compiled session must expose stats"
  | Some s ->
      check_bool "states materialised" true (s.Validate.states > 0);
      check_bool "transitions reused across nodes" true
        (s.Validate.hits > 10 * s.Validate.misses));
  (* A derivative session has no automaton store. *)
  let plain = Validate.session schema graph in
  check_bool "no stats without backend" true
    (Option.is_none (Validate.compiled_stats plain));
  (* check/typing parity on a single node, via the public one-shot API. *)
  match valid with
  | [] -> ()
  | n :: _ ->
      let c = Validate.validate ~engine:Validate.Compiled schema graph n person in
      let d = Validate.validate schema graph n person in
      check_bool "ok parity" d.Validate.ok c.Validate.ok;
      Alcotest.check typing "typing parity" d.Validate.typing c.Validate.typing

let suites =
  [ ( "automaton",
      [ Alcotest.test_case "hash-cons ACI canonicalisation" `Quick
          test_hcons_aci;
        Alcotest.test_case "hash-cons unit laws" `Quick test_hcons_units;
        Alcotest.test_case "hash-cons distributive factoring" `Quick
          test_hcons_factoring;
        Alcotest.test_case "precomputed nullability" `Quick
          test_hcons_nullable;
        Alcotest.test_case "DFA ≡ derivatives on worked examples" `Quick
          test_dfa_examples;
        Alcotest.test_case "transition cache reused across nodes" `Quick
          test_dfa_cache_reuse;
        Alcotest.test_case "Compiled ≡ Derivatives on the suite schemas"
          `Quick test_suite_equivalence;
        Alcotest.test_case "session cache stats" `Quick test_session_stats;
        QCheck_alcotest.to_alcotest prop_dfa_equals_deriv;
        QCheck_alcotest.to_alcotest prop_engines_agree_on_portals ] ) ]

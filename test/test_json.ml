(* Tests for the JSON substrate: parse/print round-trips, escapes,
   accessors and error reporting. *)

open Util

let parse s =
  match Json.of_string s with
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let test_scalars () =
  check_bool "null" true (parse "null" = Json.Null);
  check_bool "true" true (parse "true" = Json.Bool true);
  check_bool "false" true (parse "false" = Json.Bool false);
  check_bool "int" true (parse "42" = Json.Number 42.0);
  check_bool "negative" true (parse "-7" = Json.Number (-7.0));
  check_bool "float" true (parse "2.5" = Json.Number 2.5);
  check_bool "exponent" true (parse "1e3" = Json.Number 1000.0);
  check_bool "string" true (parse "\"hi\"" = Json.String "hi")

let test_structures () =
  check_bool "array" true
    (parse "[1, 2, 3]" = Json.Array [ Json.Number 1.0; Json.Number 2.0; Json.Number 3.0 ]);
  check_bool "empty array" true (parse "[]" = Json.Array []);
  check_bool "empty object" true (parse "{}" = Json.Object []);
  check_bool "object" true
    (parse "{\"a\": 1, \"b\": [true]}"
    = Json.Object
        [ ("a", Json.Number 1.0); ("b", Json.Array [ Json.Bool true ]) ]);
  check_bool "nested" true
    (parse "{\"x\": {\"y\": null}}"
    = Json.Object [ ("x", Json.Object [ ("y", Json.Null) ]) ])

let test_string_escapes () =
  check_bool "basic escapes" true
    (parse "\"a\\n\\t\\\"b\\\\c\"" = Json.String "a\n\t\"b\\c");
  check_bool "unicode" true (parse "\"\\u00e9\"" = Json.String "\xc3\xa9");
  check_bool "surrogate pair" true
    (parse "\"\\ud83d\\ude00\"" = Json.String "\xf0\x9f\x98\x80")

let test_errors () =
  List.iter
    (fun src ->
      check_bool src true (Result.is_error (Json.of_string src)))
    [ ""; "{"; "[1,"; "\"abc"; "tru"; "{\"a\" 1}"; "[1 2]"; "nul";
      "{\"a\":1} extra"; "\"\\q\"" ]

let test_roundtrip () =
  let v =
    Json.Object
      [ ("name", Json.String "shex \"quoted\"\nline");
        ("counts", Json.Array [ Json.int 1; Json.int 2 ]);
        ("ok", Json.Bool true);
        ("nothing", Json.Null);
        ("pi", Json.Number 3.25) ]
  in
  check_bool "pretty roundtrip" true (parse (Json.to_string v) = v);
  check_bool "minified roundtrip" true
    (parse (Json.to_string ~minify:true v) = v)

let test_accessors () =
  let v = parse "{\"a\": 1, \"b\": \"x\", \"c\": [1,2]}" in
  Alcotest.(check (option int)) "find_int" (Some 1) (Json.find_int "a" v);
  Alcotest.(check (option string)) "find_string" (Some "x")
    (Json.find_string "b" v);
  check_bool "find_list" true (Json.find_list "c" v <> None);
  check_bool "missing" true (Json.find "zz" v = None);
  check_bool "as_int non-integer" true (Json.as_int (Json.Number 1.5) = None)

let suites =
  [ ( "json",
      [ Alcotest.test_case "scalars" `Quick test_scalars;
        Alcotest.test_case "structures" `Quick test_structures;
        Alcotest.test_case "string escapes" `Quick test_string_escapes;
        Alcotest.test_case "errors" `Quick test_errors;
        Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        Alcotest.test_case "accessors" `Quick test_accessors ] ) ]

(* Tests for the backtracking baseline (Fig. 1 rules) and its
   agreement with the derivative matcher. *)

open Util
open Shex

(* Example 8: the backtracking matcher accepts via decomposition. *)
let test_example8 () =
  check_bool "matches" true
    (Backtrack.matches (node "n") example8_graph example5)

let test_example12_rejected () =
  check_bool "fails" false
    (Backtrack.matches (node "n") example12_graph example5)

let test_empty_graph () =
  check_bool "ε" true
    (Backtrack.matches (node "n") Rdf.Graph.empty Rse.epsilon);
  check_bool "∅" false
    (Backtrack.matches (node "n") Rdf.Graph.empty Rse.empty);
  check_bool "star" true
    (Backtrack.matches (node "n") Rdf.Graph.empty
       (Rse.star (arc_num "a" [ 1 ])))

let test_arc_exactly_one () =
  let e = arc_num "a" [ 1 ] in
  check_bool "one triple" true
    (Backtrack.matches (node "n") (graph_of [ t3 "n" "a" (num 1) ]) e);
  check_bool "two triples" false
    (Backtrack.matches (node "n")
       (graph_of [ t3 "n" "a" (num 1); t3 "n" "b" (num 1) ])
       e)

let test_star_terminates () =
  (* Star2 requires a non-empty g1, so matching terminates. *)
  let e = Rse.star (arc_num "b" [ 1; 2; 3 ]) in
  let g = graph_of (List.init 3 (fun j -> t3 "n" "b" (num (j + 1)))) in
  check_bool "b* on 3 arcs" true (Backtrack.matches (node "n") g e)

let test_work_counter_grows () =
  (* The explored-rule counter must grow steeply with the
     neighbourhood: a failing ‖-match explores all 2^n
     decompositions (Example 3). *)
  let graph k = graph_of (List.init k (fun j -> t3 "n" "b" (num (j + 1)))) in
  let e =
    Rse.and_ (arc_num "a" [ 0 ])
      (Rse.star (arc_num "b" (List.init 10 (fun j -> j + 1))))
  in
  (* No a-arc in the graph, so the match fails after exhausting every
     decomposition. *)
  let work k = snd (Backtrack.matches_count (node "n") (graph k) e) in
  let w3 = work 3 and w9 = work 9 in
  check_bool "match fails" false (Backtrack.matches (node "n") (graph 9) e);
  check_bool "exponential-ish growth" true (w9 > 8 * w3)

let test_agreement_on_examples () =
  List.iter
    (fun (e, g) ->
      check_bool "backtrack = deriv" true
        (Bool.equal
           (Backtrack.matches (node "n") g e)
           (Deriv.matches (node "n") g e)))
    [ (example5, example8_graph);
      (example5, example12_graph);
      (example10, example8_graph);
      (example10, graph_of [ t3 "n" "a" (num 1); t3 "n" "b" (num 2) ]);
      (Rse.plus (arc_num "b" [ 1; 2 ]), example8_graph);
      (Rse.opt (arc_num "a" [ 1 ]), Rdf.Graph.empty) ]

let test_negation () =
  let e = Rse.not_ (arc_num "a" [ 1 ]) in
  check_bool "¬ empty ok" true
    (Backtrack.matches (node "n") Rdf.Graph.empty e);
  check_bool "¬ exact rejected" false
    (Backtrack.matches (node "n") (graph_of [ t3 "n" "a" (num 1) ]) e)

let test_matches_list () =
  let dts = List.map Neigh.out (Rdf.Graph.to_list example8_graph) in
  check_bool "list API" true (Backtrack.matches_list dts example5)

let suites =
  [ ( "backtrack",
      [ Alcotest.test_case "Example 8 accepted" `Quick test_example8;
        Alcotest.test_case "Example 12 rejected" `Quick
          test_example12_rejected;
        Alcotest.test_case "empty graph" `Quick test_empty_graph;
        Alcotest.test_case "arc needs exactly one triple" `Quick
          test_arc_exactly_one;
        Alcotest.test_case "star terminates" `Quick test_star_terminates;
        Alcotest.test_case "work counter grows steeply" `Quick
          test_work_counter_grows;
        Alcotest.test_case "agrees with derivatives" `Quick
          test_agreement_on_examples;
        Alcotest.test_case "negation" `Quick test_negation;
        Alcotest.test_case "explicit neighbourhood API" `Quick
          test_matches_list ] ) ]

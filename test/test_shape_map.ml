(* Tests for shape maps and validation reports. *)

open Util
open Shex

let foaf l = Rdf.Iri.of_string_exn ("http://xmlns.com/foaf/0.1/" ^ l)
let person = Label.of_string "Person"

let graph =
  graph_of
    [ triple (node "john") (foaf "age") (num 23);
      triple (node "john") (foaf "name") (Rdf.Term.str "John");
      triple (node "john") (foaf "knows") (node "bob");
      triple (node "bob") (foaf "age") (num 34);
      triple (node "bob") (foaf "name") (Rdf.Term.str "Bob");
      triple (node "mary") (foaf "age") (num 50);
      triple (node "mary") (foaf "age") (num 65);
      triple (node "john") Rdf.Namespace.Vocab.rdf_type (node "Human");
      triple (node "mary") Rdf.Namespace.Vocab.rdf_type (node "Human") ]

let schema =
  Schema.make_exn
    [ ( person,
        Rse.and_all
          [ Rse.arc_v (Value_set.Pred (foaf "age")) Value_set.xsd_integer;
            Rse.plus
              (Rse.arc_v (Value_set.Pred (foaf "name")) Value_set.xsd_string);
            Rse.star (Rse.arc_ref (Value_set.Pred (foaf "knows")) person);
            Rse.opt
              (Rse.arc_v (Value_set.Pred Rdf.Namespace.Vocab.rdf_type)
                 Value_set.Obj_any) ] ) ]

let parse src = Shape_map.parse_exn src

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

let test_parse_node_association () =
  let sm = parse "<http://example.org/john>@<Person>" in
  check_int "one association" 1 (List.length sm);
  match sm with
  | [ { Shape_map.selector = Shape_map.Node n; label } ] ->
      Alcotest.check term "node" (node "john") n;
      check_bool "label" true (Label.equal label person)
  | _ -> Alcotest.fail "unexpected structure"

let test_parse_pname_and_bnode () =
  let sm = parse "ex:john@ex:Person, _:b0@<S>" in
  check_int "two associations" 2 (List.length sm);
  match sm with
  | [ { Shape_map.selector = Shape_map.Node n1; label = l1 };
      { Shape_map.selector = Shape_map.Node n2; _ } ] ->
      Alcotest.check term "pname node" (node "john") n1;
      check_bool "pname label expanded" true
        (Label.to_string l1 = "http://example.org/Person");
      Alcotest.check term "bnode" (Rdf.Term.bnode "b0") n2
  | _ -> Alcotest.fail "unexpected structure"

let test_parse_focus_subject () =
  match parse "{FOCUS a ex:Human}@<Person>" with
  | [ { Shape_map.selector = Shape_map.Focus_subject (Some p, Some o); _ } ]
    ->
      check_bool "pred is rdf:type" true
        (Rdf.Iri.equal p Rdf.Namespace.Vocab.rdf_type);
      Alcotest.check term "object" (iri "http://example.org/Human") o
  | _ -> Alcotest.fail "unexpected structure"

let test_parse_focus_object_and_wildcards () =
  (match parse "{_ foaf:knows FOCUS}@<Person>" with
  | [ { Shape_map.selector = Shape_map.Focus_object (None, Some p); _ } ] ->
      check_bool "pred" true (Rdf.Iri.equal p (foaf "knows"))
  | _ -> Alcotest.fail "focus object");
  match parse "{FOCUS foaf:age _}@<Person>" with
  | [ { Shape_map.selector = Shape_map.Focus_subject (Some _, None); _ } ] ->
      ()
  | _ -> Alcotest.fail "wildcard object"

let test_parse_errors () =
  List.iter
    (fun src ->
      check_bool src true (Result.is_error (Shape_map.parse src)))
    [ "<x>"; "<x>@"; "@<S>"; "{FOCUS}@<S>"; "{<a> <p> <o>}@<S>";
      "nope:x@<S>"; "<x>@<S> trailing" ]

let test_pp_roundtrip () =
  let sm =
    parse "<http://example.org/john>@<Person>, {FOCUS a ex:Human}@<Person>"
  in
  let printed = Format.asprintf "%a" Shape_map.pp sm in
  let sm2 = parse printed in
  check_int "same size" (List.length sm) (List.length sm2)

(* ------------------------------------------------------------------ *)
(* Resolution                                                         *)
(* ------------------------------------------------------------------ *)

let test_resolve_node () =
  let pairs = Shape_map.resolve (parse "ex:john@<Person>") graph in
  check_int "one pair" 1 (List.length pairs)

let test_resolve_focus_subject () =
  (* Both john and mary have rdf:type ex:Human. *)
  let pairs =
    Shape_map.resolve (parse "{FOCUS a ex:Human}@<Person>") graph
  in
  check_int "two focus nodes" 2 (List.length pairs)

let test_resolve_focus_object () =
  (* Objects of foaf:knows: bob. *)
  let pairs =
    Shape_map.resolve (parse "{_ foaf:knows FOCUS}@<Person>") graph
  in
  check_int "one object" 1 (List.length pairs);
  match pairs with
  | [ (n, _) ] -> Alcotest.check term "bob" (node "bob") n
  | _ -> Alcotest.fail "unexpected"

let test_resolve_dedup () =
  let pairs =
    Shape_map.resolve
      (parse "ex:john@<Person>, {FOCUS foaf:age _}@<Person>")
      graph
  in
  (* john appears through both selectors but only once in the result;
     bob and mary via age. *)
  check_int "three pairs" 3 (List.length pairs)

(* ------------------------------------------------------------------ *)
(* Reports                                                            *)
(* ------------------------------------------------------------------ *)

let test_report_run () =
  let session = Validate.session schema graph in
  let report =
    Report.run_shape_map session (parse "{FOCUS foaf:age _}@<Person>") graph
  in
  check_int "three entries" 3 (List.length report.Report.entries);
  check_int "two conformant" 2 (List.length (Report.conformant report));
  check_int "one nonconformant" 1
    (List.length (Report.nonconformant report));
  check_bool "not all conformant" false (Report.all_conformant report);
  (* mary's entry carries a reason *)
  match Report.nonconformant report with
  | [ e ] ->
      check_bool "mary" true (Rdf.Term.equal e.Report.node (node "mary"));
      check_bool "has reason" true (Report.reason e <> None)
  | _ -> Alcotest.fail "expected exactly mary"

let test_report_result_shape_map () =
  let session = Validate.session schema graph in
  let report =
    Report.run session [ (node "john", person); (node "mary", person) ]
  in
  let text = Report.to_result_shape_map report in
  let has_sub sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check_bool "john conforms" true
    (has_sub "<http://example.org/john>@<Person>" text);
  check_bool "mary bang" true
    (has_sub "<http://example.org/mary>@!<Person>" text)

let test_report_json () =
  let session = Validate.session schema graph in
  let report =
    Report.run session [ (node "john", person); (node "mary", person) ]
  in
  let j = Report.to_json report in
  Alcotest.(check (option int)) "conformant" (Some 1)
    (Json.find_int "conformant" j);
  Alcotest.(check (option int)) "nonconformant" (Some 1)
    (Json.find_int "nonconformant" j);
  (* The JSON must itself parse back. *)
  check_bool "serialises" true
    (Result.is_ok (Json.of_string (Json.to_string j)));
  match Json.find_list "entries" j with
  | Some [ e1; _ ] ->
      Alcotest.(check (option string)) "status" (Some "conformant")
        (Json.find_string "status" e1)
  | _ -> Alcotest.fail "expected two entries"

let test_report_typing () =
  let session = Validate.session schema graph in
  let report = Report.run session [ (node "john", person) ] in
  (* Validating john certifies bob through foaf:knows. *)
  check_bool "bob in typing" true
    (Typing.mem (node "bob") person report.Report.typing)

let suites =
  [ ( "shape_map.parse",
      [ Alcotest.test_case "node association" `Quick
          test_parse_node_association;
        Alcotest.test_case "pnames and bnodes" `Quick
          test_parse_pname_and_bnode;
        Alcotest.test_case "FOCUS subject" `Quick test_parse_focus_subject;
        Alcotest.test_case "FOCUS object + wildcards" `Quick
          test_parse_focus_object_and_wildcards;
        Alcotest.test_case "errors" `Quick test_parse_errors;
        Alcotest.test_case "pp roundtrip" `Quick test_pp_roundtrip ] );
    ( "shape_map.resolve",
      [ Alcotest.test_case "concrete node" `Quick test_resolve_node;
        Alcotest.test_case "focus subject" `Quick
          test_resolve_focus_subject;
        Alcotest.test_case "focus object" `Quick test_resolve_focus_object;
        Alcotest.test_case "deduplication" `Quick test_resolve_dedup ] );
    ( "report",
      [ Alcotest.test_case "run over shape map" `Quick test_report_run;
        Alcotest.test_case "result shape map" `Quick
          test_report_result_shape_map;
        Alcotest.test_case "json rendering" `Quick test_report_json;
        Alcotest.test_case "typing propagation" `Quick test_report_typing ]
    ) ]

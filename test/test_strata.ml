(* Tests for stratified negation: the Strata analysis and validation
   behaviour with negated references across strata. *)

open Util
open Shex

let label = Label.of_string
let foaf l = Rdf.Iri.of_string_exn ("http://xmlns.com/foaf/0.1/" ^ l)
let arc_ref p l = Rse.arc_ref (Value_set.Pred (ex p)) l
let arc_any p = Rse.arc_v (Value_set.Pred (ex p)) Value_set.Obj_any

(* ------------------------------------------------------------------ *)
(* Strata computation                                                 *)
(* ------------------------------------------------------------------ *)

let strata_of rules =
  match Strata.compute rules with
  | Ok s -> s
  | Error msg -> Alcotest.fail msg

let test_flat_schema_one_stratum () =
  let s =
    strata_of [ (label "A", arc_any "p"); (label "B", arc_any "q") ]
  in
  check_int "stratum A" 0 (Strata.stratum s (label "A"));
  check_int "stratum B" 0 (Strata.stratum s (label "B"));
  check_int "one stratum" 1 (Strata.count s)

let test_positive_recursion_one_stratum () =
  let s =
    strata_of
      [ (label "A", arc_ref "p" (label "B"));
        (label "B", arc_ref "q" (label "A")) ]
  in
  check_int "same stratum" (Strata.stratum s (label "A"))
    (Strata.stratum s (label "B"));
  check_bool "same component" true
    (Strata.same_component s (label "A") (label "B"))

let test_negation_lifts_stratum () =
  let s =
    strata_of
      [ (label "Base", arc_any "p");
        (label "Neg", Rse.not_ (arc_ref "q" (label "Base"))) ]
  in
  check_int "base at 0" 0 (Strata.stratum s (label "Base"));
  check_int "neg at 1" 1 (Strata.stratum s (label "Neg"));
  check_int "two strata" 2 (Strata.count s)

let test_negation_chain () =
  (* C negates B, B negates A: three strata. *)
  let s =
    strata_of
      [ (label "A", arc_any "p");
        (label "B", Rse.not_ (arc_ref "q" (label "A")));
        (label "C", Rse.not_ (arc_ref "r" (label "B"))) ]
  in
  check_int "A" 0 (Strata.stratum s (label "A"));
  check_int "B" 1 (Strata.stratum s (label "B"));
  check_int "C" 2 (Strata.stratum s (label "C"));
  check_int "three strata" 3 (Strata.count s)

let test_positive_ref_does_not_lift () =
  let s =
    strata_of
      [ (label "A", arc_any "p"); (label "B", arc_ref "q" (label "A")) ]
  in
  check_int "B stays at 0" 0 (Strata.stratum s (label "B"))

let test_negative_self_cycle_rejected () =
  check_bool "self negation" true
    (Result.is_error
       (Strata.compute [ (label "A", Rse.not_ (arc_ref "p" (label "A"))) ]))

let test_negative_mutual_cycle_rejected () =
  check_bool "mutual negation" true
    (Result.is_error
       (Strata.compute
          [ (label "A", arc_ref "p" (label "B"));
            (label "B", Rse.not_ (arc_ref "q" (label "A"))) ]))

let test_mixed_polarity_same_pair_rejected () =
  (* A refers to B both positively and under negation while B refers
     back: the negative edge is inside the SCC. *)
  check_bool "mixed polarity in cycle" true
    (Result.is_error
       (Strata.compute
          [ ( label "A",
              Rse.and_ (arc_ref "p" (label "B"))
                (Rse.not_ (arc_ref "n" (label "B"))) );
            (label "B", arc_ref "q" (label "A")) ]))

(* ------------------------------------------------------------------ *)
(* Schema integration                                                 *)
(* ------------------------------------------------------------------ *)

let test_schema_accepts_stratified_negation () =
  let schema =
    Schema.make
      [ (label "Base", arc_any "p");
        (label "Neg", Rse.not_ (arc_ref "q" (label "Base"))) ]
  in
  match schema with
  | Ok s ->
      check_int "strata" 2 (Schema.strata_count s);
      check_int "Neg stratum" 1 (Schema.stratum s (label "Neg"))
  | Error msg -> Alcotest.fail msg

let test_schema_rejects_unstratified () =
  check_bool "rejected" true
    (Result.is_error
       (Schema.make [ (label "A", Rse.not_ (arc_ref "p" (label "A"))) ]))

(* ------------------------------------------------------------------ *)
(* Validation with negation across strata                             *)
(* ------------------------------------------------------------------ *)

(* Person as usual; Loner = someone whose neighbourhood does NOT
   contain a knows-arc to a conforming Person. *)
let loner_schema =
  let person = label "Person" in
  let loner = label "Loner" in
  Schema.make_exn
    [ ( person,
        Rse.and_all
          [ Rse.arc_v (Value_set.Pred (foaf "age")) Value_set.xsd_integer;
            Rse.plus
              (Rse.arc_v (Value_set.Pred (foaf "name")) Value_set.xsd_string);
            Rse.star (Rse.arc_ref (Value_set.Pred (foaf "knows")) person) ]
      );
      ( loner,
        Rse.not_
          (Rse.and_
             (Rse.arc_ref (Value_set.Pred (foaf "knows")) person)
             (Rse.not_ Rse.empty)) ) ]

let loner_graph =
  graph_of
    [ (* bob is a conforming person *)
      triple (node "bob") (foaf "age") (num 34);
      triple (node "bob") (foaf "name") (Rdf.Term.str "Bob");
      (* mary is not (two ages) *)
      triple (node "mary") (foaf "age") (num 50);
      triple (node "mary") (foaf "age") (num 65);
      (* x knows bob (a Person) → not a Loner *)
      triple (node "x") (foaf "knows") (node "bob");
      (* y knows only mary (not a Person) → Loner *)
      triple (node "y") (foaf "knows") (node "mary");
      (* z has unrelated arcs only → Loner *)
      triple (node "z") (ex "other") (num 1) ]

let test_loner_validation () =
  let loner = label "Loner" in
  let session = Validate.session loner_schema loner_graph in
  check_bool "x not loner" false
    (Validate.check_bool session (node "x") loner);
  check_bool "y loner" true (Validate.check_bool session (node "y") loner);
  check_bool "z loner" true (Validate.check_bool session (node "z") loner);
  (* An isolated node (empty neighbourhood) is a Loner too. *)
  check_bool "isolated loner" true
    (Validate.check_bool session (node "nowhere") loner)

let test_loner_engines_agree () =
  let loner = label "Loner" in
  List.iter
    (fun engine ->
      let session = Validate.session ~engine loner_schema loner_graph in
      check_bool "x" false (Validate.check_bool session (node "x") loner);
      check_bool "y" true (Validate.check_bool session (node "y") loner))
    [ Validate.Derivatives; Validate.Backtracking ]

(* Negation over a recursive (but lower-stratum) shape: the Person
   cycle itself is recursive, and Loner negates into it. *)
let test_negation_over_recursive_stratum () =
  let loner = label "Loner" in
  let g =
    graph_of
      [ triple (node "a") (foaf "age") (num 1);
        triple (node "a") (foaf "name") (Rdf.Term.str "A");
        triple (node "a") (foaf "knows") (node "b");
        triple (node "b") (foaf "age") (num 2);
        triple (node "b") (foaf "name") (Rdf.Term.str "B");
        triple (node "b") (foaf "knows") (node "a");
        triple (node "w") (foaf "knows") (node "a") ]
  in
  let session = Validate.session loner_schema g in
  (* a and b form a valid Person cycle, so w knows a Person. *)
  check_bool "w not loner" false
    (Validate.check_bool session (node "w") loner)

let suites =
  [ ( "strata.compute",
      [ Alcotest.test_case "flat schema" `Quick test_flat_schema_one_stratum;
        Alcotest.test_case "positive recursion" `Quick
          test_positive_recursion_one_stratum;
        Alcotest.test_case "negation lifts stratum" `Quick
          test_negation_lifts_stratum;
        Alcotest.test_case "negation chain" `Quick test_negation_chain;
        Alcotest.test_case "positive refs do not lift" `Quick
          test_positive_ref_does_not_lift;
        Alcotest.test_case "negative self-cycle rejected" `Quick
          test_negative_self_cycle_rejected;
        Alcotest.test_case "negative mutual cycle rejected" `Quick
          test_negative_mutual_cycle_rejected;
        Alcotest.test_case "mixed polarity rejected" `Quick
          test_mixed_polarity_same_pair_rejected ] );
    ( "strata.schema",
      [ Alcotest.test_case "stratified negation accepted" `Quick
          test_schema_accepts_stratified_negation;
        Alcotest.test_case "unstratified rejected" `Quick
          test_schema_rejects_unstratified ] );
    ( "strata.validate",
      [ Alcotest.test_case "Loner shape" `Quick test_loner_validation;
        Alcotest.test_case "engines agree" `Quick test_loner_engines_agree;
        Alcotest.test_case "negation over recursive stratum" `Quick
          test_negation_over_recursive_stratum ] ) ]

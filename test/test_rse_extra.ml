(* Additional unit tests for the expression algebra: the ACI +
   factoring normalisation, open-shape combinators, and predicate
   collection. *)

open Util
open Shex

let a1 = arc_num "a" [ 1 ]
let b1 = arc_num "b" [ 1 ]
let c1 = arc_num "c" [ 1 ]

(* ------------------------------------------------------------------ *)
(* ACI normalisation                                                  *)
(* ------------------------------------------------------------------ *)

let test_and_commutative_normal_form () =
  Alcotest.check rse "a‖b = b‖a" (Rse.and_ a1 b1) (Rse.and_ b1 a1);
  Alcotest.check rse "assoc"
    (Rse.and_ (Rse.and_ a1 b1) c1)
    (Rse.and_ a1 (Rse.and_ b1 c1))

let test_or_commutative_normal_form () =
  Alcotest.check rse "a|b = b|a" (Rse.or_ a1 b1) (Rse.or_ b1 a1);
  Alcotest.check rse "assoc (no common factor)"
    (Rse.or_ (Rse.or_ a1 b1) c1)
    (Rse.or_ a1 (Rse.or_ b1 c1))

let test_or_dedup_across_nesting () =
  Alcotest.check rse "a|(b|a) = a|b" (Rse.or_ a1 b1)
    (Rse.or_ a1 (Rse.or_ b1 a1))

let test_and_keeps_duplicates () =
  (* ‖ is a bag operator: a‖a must stay two obligations. *)
  check_int "a‖a has 2 leaves" 2 (List.length (Rse.arcs (Rse.and_ a1 a1)))

let test_factoring () =
  (* (a‖c) | (b‖c) = c ‖ (a|b) *)
  let left = Rse.and_ a1 c1 and right = Rse.and_ b1 c1 in
  Alcotest.check rse "common factor pulled out"
    (Rse.and_ c1 (Rse.or_ a1 b1))
    (Rse.or_ left right);
  (* (a‖c) | c = c ‖ (a|ε) = c ‖ a? *)
  Alcotest.check rse "residual epsilon"
    (Rse.and_ c1 (Rse.opt a1))
    (Rse.or_ (Rse.and_ a1 c1) c1)

let test_factoring_multiset () =
  (* (a‖a‖b) | (a‖b) factors the common bag {a, b}, leaving (a | ε). *)
  Alcotest.check rse "multiset common"
    (Rse.and_all [ a1; b1; Rse.opt a1 ])
    (Rse.or_ (Rse.and_all [ a1; a1; b1 ]) (Rse.and_ a1 b1))

let test_epsilon_split () =
  (* ε | (a‖c) | (b‖c): ε stays outside the factored core. *)
  let e = Rse.or_all [ Rse.epsilon; Rse.and_ a1 c1; Rse.and_ b1 c1 ] in
  Alcotest.check rse "eps preserved"
    (Rse.or_ Rse.epsilon (Rse.and_ c1 (Rse.or_ a1 b1)))
    e

let test_epsilon_absorbed_by_star () =
  (* ε | a* = a* (the alternative is already nullable). *)
  Alcotest.check rse "eps | star" (Rse.star a1)
    (Rse.or_ Rse.epsilon (Rse.star a1))

(* ------------------------------------------------------------------ *)
(* mentioned_preds / open_up / with_extra                              *)
(* ------------------------------------------------------------------ *)

let test_mentioned_preds () =
  let e = Rse.and_all [ a1; Rse.star b1; Rse.opt a1 ] in
  check_int "two outgoing predicates" 2
    (List.length (Rse.mentioned_preds ~inverse:false e));
  check_int "no inverse predicates" 0
    (List.length (Rse.mentioned_preds ~inverse:true e));
  let inv =
    Rse.arc_v ~inverse:true (Value_set.Pred (ex "r")) Value_set.Obj_any
  in
  check_int "one inverse predicate" 1
    (List.length (Rse.mentioned_preds ~inverse:true (Rse.and_ e inv)))

let test_open_up_structure () =
  let e = Rse.and_ a1 b1 in
  let opened = Rse.open_up e in
  (* The opened shape adds exactly one starred complement arc. *)
  let extra_stars =
    List.filter
      (fun (arc : Rse.arc) ->
        match arc.pred with Value_set.Pred_compl _ -> true | _ -> false)
      (Rse.arcs opened)
  in
  check_int "one complement arc" 1 (List.length extra_stars)

let test_open_up_no_outgoing () =
  (* Opening a shape with no outgoing arcs tolerates any outgoing arc. *)
  let opened = Rse.open_up Rse.epsilon in
  check_bool "matches arbitrary neighbourhood" true
    (Deriv.matches (node "n")
       (graph_of [ t3 "n" "whatever" (num 5) ])
       opened)

let test_with_extra_values_ignored () =
  (* EXTRA tolerates failing values only on the extra predicate. *)
  let e = Rse.with_extra (Value_set.Pred (ex "a")) a1 in
  let g_two_a =
    graph_of [ t3 "n" "a" (num 1); t3 "n" "a" (num 99) ]
  in
  check_bool "extra a tolerated" true (Deriv.matches (node "n") g_two_a e);
  let g_no_valid_a = graph_of [ t3 "n" "a" (num 99) ] in
  check_bool "required a still required" false
    (Deriv.matches (node "n") g_no_valid_a e)

(* ------------------------------------------------------------------ *)
(* repeat at larger sizes                                             *)
(* ------------------------------------------------------------------ *)

let test_repeat_large () =
  let e = Rse.repeat 5 (Some 10) (arc_num "b" (List.init 12 (fun i -> i + 1))) in
  let g k = graph_of (List.init k (fun j -> t3 "n" "b" (num (j + 1)))) in
  List.iter
    (fun (k, expected) ->
      check_bool (string_of_int k) expected (Deriv.matches (node "n") (g k) e))
    [ (4, false); (5, true); (7, true); (10, true); (11, false) ]

let test_repeat_exact () =
  let e = Rse.repeat 3 (Some 3) (arc_num "b" [ 1; 2; 3; 4 ]) in
  let g k = graph_of (List.init k (fun j -> t3 "n" "b" (num (j + 1)))) in
  List.iter
    (fun (k, expected) ->
      check_bool (string_of_int k) expected (Deriv.matches (node "n") (g k) e))
    [ (2, false); (3, true); (4, false) ]

let suites =
  [ ( "rse.normalisation",
      [ Alcotest.test_case "‖ commutative normal form" `Quick
          test_and_commutative_normal_form;
        Alcotest.test_case "| commutative normal form" `Quick
          test_or_commutative_normal_form;
        Alcotest.test_case "| dedups across nesting" `Quick
          test_or_dedup_across_nesting;
        Alcotest.test_case "‖ keeps duplicates (bag)" `Quick
          test_and_keeps_duplicates;
        Alcotest.test_case "distributive factoring" `Quick test_factoring;
        Alcotest.test_case "multiset factoring" `Quick
          test_factoring_multiset;
        Alcotest.test_case "ε split" `Quick test_epsilon_split;
        Alcotest.test_case "ε absorbed by star" `Quick
          test_epsilon_absorbed_by_star ] );
    ( "rse.open",
      [ Alcotest.test_case "mentioned_preds" `Quick test_mentioned_preds;
        Alcotest.test_case "open_up structure" `Quick test_open_up_structure;
        Alcotest.test_case "open_up of ε" `Quick test_open_up_no_outgoing;
        Alcotest.test_case "with_extra values" `Quick
          test_with_extra_values_ignored ] );
    ( "rse.repeat",
      [ Alcotest.test_case "wide interval" `Quick test_repeat_large;
        Alcotest.test_case "exact count" `Quick test_repeat_exact ] ) ]

(* Tests for schemas and the §8 type inference algorithm, reproducing
   Examples 1–2 and 13–14 and exercising recursion. *)

open Util
open Shex

let label = Label.of_string
let foaf l = Rdf.Iri.of_string_exn ("http://xmlns.com/foaf/0.1/" ^ l)

(* The Person schema of Examples 1 and 14:
   person ↦ foaf:age→xsd:int ‖ (foaf:name→xsd:string)+ ‖ (foaf:knows→@person)* *)
let person = label "Person"

let person_schema =
  Schema.make_exn
    [ ( person,
        Rse.and_all
          [ Rse.arc_v (Value_set.Pred (foaf "age")) Value_set.xsd_integer;
            Rse.plus
              (Rse.arc_v (Value_set.Pred (foaf "name")) Value_set.xsd_string);
            Rse.star (Rse.arc_ref (Value_set.Pred (foaf "knows")) person) ]
      ) ]

(* Example 2's graph. *)
let example2_graph =
  graph_of
    [ triple (node "john") (foaf "age") (num 23);
      triple (node "john") (foaf "name") (Rdf.Term.str "John");
      triple (node "john") (foaf "knows") (node "bob");
      triple (node "bob") (foaf "age") (num 34);
      triple (node "bob") (foaf "name") (Rdf.Term.str "Bob");
      triple (node "bob") (foaf "name") (Rdf.Term.str "Robert");
      triple (node "mary") (foaf "age") (num 50);
      triple (node "mary") (foaf "age") (num 65) ]

(* ------------------------------------------------------------------ *)
(* Schema construction                                                *)
(* ------------------------------------------------------------------ *)

let test_schema_build () =
  check_int "one label" 1 (List.length (Schema.labels person_schema));
  check_bool "find" true (Schema.find person_schema person <> None);
  check_bool "find missing" true
    (Schema.find person_schema (label "Nope") = None)

let test_schema_duplicate () =
  check_bool "duplicate rejected" true
    (Result.is_error
       (Schema.make [ (person, Rse.epsilon); (person, Rse.empty) ]))

let test_schema_undefined_ref () =
  check_bool "dangling ref rejected" true
    (Result.is_error
       (Schema.make
          [ ( person,
              Rse.arc_ref (Value_set.Pred (foaf "knows")) (label "Ghost") )
          ]))

let test_schema_recursion_detection () =
  check_bool "Person is recursive" true
    (Schema.is_recursive person_schema person);
  let flat =
    Schema.make_exn [ (label "T", arc_num "a" [ 1 ]) ]
  in
  check_bool "flat is not" false (Schema.is_recursive flat (label "T"))

let test_schema_dependencies () =
  let a = label "A" and b = label "B" and c = label "C" in
  let s =
    Schema.make_exn
      [ (a, Rse.arc_ref (Value_set.Pred (ex "p")) b);
        (b, Rse.arc_ref (Value_set.Pred (ex "p")) c);
        (c, Rse.epsilon) ]
  in
  check_int "A reaches 3" 3 (Label.Set.cardinal (Schema.dependencies s a));
  check_int "C reaches 1" 1 (Label.Set.cardinal (Schema.dependencies s c))

(* ------------------------------------------------------------------ *)
(* Example 2: john and bob are Persons, mary is not                   *)
(* ------------------------------------------------------------------ *)

let test_example2 () =
  let session = Validate.session person_schema example2_graph in
  check_bool "john" true (Validate.check_bool session (node "john") person);
  check_bool "bob" true (Validate.check_bool session (node "bob") person);
  check_bool "mary" false (Validate.check_bool session (node "mary") person)

let test_example2_backtracking_engine () =
  let session =
    Validate.session ~engine:Validate.Backtracking person_schema
      example2_graph
  in
  check_bool "john" true (Validate.check_bool session (node "john") person);
  check_bool "mary" false (Validate.check_bool session (node "mary") person)

let test_example2_auto_engine () =
  (* The Person shape is single-occurrence, so Auto runs the counting
     matcher — same verdicts, including through the recursion. *)
  let session =
    Validate.session ~engine:Validate.Auto person_schema example2_graph
  in
  check_bool "john" true (Validate.check_bool session (node "john") person);
  check_bool "bob" true (Validate.check_bool session (node "bob") person);
  check_bool "mary" false (Validate.check_bool session (node "mary") person)

let test_example2_typing () =
  let session = Validate.session person_schema example2_graph in
  let outcome = Validate.check session (node "john") person in
  check_bool "ok" true outcome.Validate.ok;
  (* Checking john also certifies bob (through foaf:knows). *)
  check_bool "john typed" true
    (Typing.mem (node "john") person outcome.Validate.typing);
  check_bool "bob typed" true
    (Typing.mem (node "bob") person outcome.Validate.typing);
  check_bool "mary not typed" false
    (Typing.mem (node "mary") person outcome.Validate.typing)

let test_validate_graph () =
  let session = Validate.session person_schema example2_graph in
  let typing = Validate.validate_graph session in
  check_bool "john" true (Typing.mem (node "john") person typing);
  check_bool "bob" true (Typing.mem (node "bob") person typing);
  check_bool "mary" false (Typing.mem (node "mary") person typing)

let test_failure_reason () =
  let session = Validate.session person_schema example2_graph in
  let outcome = Validate.check session (node "mary") person in
  check_bool "failed" false outcome.Validate.ok;
  check_bool "has reason" true (outcome.Validate.explain <> None);
  (match outcome.Validate.explain with
  | Some (Explain.Blame_triple { triple; _ }) ->
      check_bool "blames an age triple" true
        (Rdf.Iri.to_string (Rdf.Triple.predicate triple.Neigh.triple)
        = "http://xmlns.com/foaf/0.1/age")
  | _ -> Alcotest.fail "expected a Blame_triple explanation")

(* ------------------------------------------------------------------ *)
(* Recursion                                                          *)
(* ------------------------------------------------------------------ *)

(* A cycle: john knows bob, bob knows john — both must validate
   coinductively. *)
let test_recursive_cycle () =
  let g =
    graph_of
      [ triple (node "john") (foaf "age") (num 23);
        triple (node "john") (foaf "name") (Rdf.Term.str "John");
        triple (node "john") (foaf "knows") (node "bob");
        triple (node "bob") (foaf "age") (num 34);
        triple (node "bob") (foaf "name") (Rdf.Term.str "Bob");
        triple (node "bob") (foaf "knows") (node "john") ]
  in
  let session = Validate.session person_schema g in
  check_bool "john in cycle" true
    (Validate.check_bool session (node "john") person);
  check_bool "bob in cycle" true
    (Validate.check_bool session (node "bob") person)

(* Self-loop: alice knows herself. *)
let test_self_loop () =
  let g =
    graph_of
      [ triple (node "alice") (foaf "age") (num 30);
        triple (node "alice") (foaf "name") (Rdf.Term.str "Alice");
        triple (node "alice") (foaf "knows") (node "alice") ]
  in
  let session = Validate.session person_schema g in
  check_bool "self-knowing person" true
    (Validate.check_bool session (node "alice") person)

(* Recursion must not leak: if the referenced node is invalid, the
   referring node fails too. *)
let test_invalid_neighbour_propagates () =
  let g =
    graph_of
      [ triple (node "john") (foaf "age") (num 23);
        triple (node "john") (foaf "name") (Rdf.Term.str "John");
        triple (node "john") (foaf "knows") (node "mary");
        (* mary has no name → not a Person *)
        triple (node "mary") (foaf "age") (num 50) ]
  in
  let session = Validate.session person_schema g in
  check_bool "mary invalid" false
    (Validate.check_bool session (node "mary") person);
  check_bool "john fails through mary" false
    (Validate.check_bool session (node "john") person)

(* Example 13: p ↦ a→1 ‖ (b→{1,2})+ ‖ (c→@p)* *)
let test_example13 () =
  let p = label "p" in
  let schema =
    Schema.make_exn
      [ ( p,
          Rse.and_all
            [ arc_num "a" [ 1 ];
              Rse.plus (arc_num "b" [ 1; 2 ]);
              Rse.star (Rse.arc_ref (Value_set.Pred (ex "c")) p) ] ) ]
  in
  let g =
    graph_of
      [ t3 "x" "a" (num 1); t3 "x" "b" (num 1); t3 "x" "c" (node "y");
        t3 "y" "a" (num 1); t3 "y" "b" (num 2) ]
  in
  let session = Validate.session schema g in
  check_bool "x has shape p" true (Validate.check_bool session (node "x") p);
  check_bool "y has shape p" true (Validate.check_bool session (node "y") p);
  (* Break y: its b-value out of range. *)
  let g_bad =
    graph_of
      [ t3 "x" "a" (num 1); t3 "x" "b" (num 1); t3 "x" "c" (node "y");
        t3 "y" "a" (num 1); t3 "y" "b" (num 7) ]
  in
  let session = Validate.session schema g_bad in
  check_bool "bad y" false (Validate.check_bool session (node "y") p);
  check_bool "x fails through y" false
    (Validate.check_bool session (node "x") p)

(* Mutual recursion between two labels. *)
let test_mutual_recursion () =
  let parent = label "Parent" and child = label "Child" in
  let schema =
    Schema.make_exn
      [ ( parent,
          Rse.plus (Rse.arc_ref (Value_set.Pred (ex "hasChild")) child) );
        ( child,
          Rse.arc_ref (Value_set.Pred (ex "hasParent")) parent ) ]
  in
  let g =
    graph_of
      [ t3 "p0" "hasChild" (node "c0"); t3 "c0" "hasParent" (node "p0") ]
  in
  let session = Validate.session schema g in
  check_bool "parent" true (Validate.check_bool session (node "p0") parent);
  check_bool "child" true (Validate.check_bool session (node "c0") child)

(* Memoisation: a hub node referenced many times is only checked once;
   verdicts stay correct. *)
let test_memoisation_consistency () =
  let g =
    List.fold_left
      (fun g k ->
        let who = "fan" ^ string_of_int k in
        g
        |> Rdf.Graph.add (triple (node who) (foaf "age") (num 20))
        |> Rdf.Graph.add (triple (node who) (foaf "name") (Rdf.Term.str who))
        |> Rdf.Graph.add (triple (node who) (foaf "knows") (node "hub")))
      (graph_of
         [ triple (node "hub") (foaf "age") (num 99);
           triple (node "hub") (foaf "name") (Rdf.Term.str "Hub") ])
      (List.init 20 Fun.id)
  in
  let session = Validate.session person_schema g in
  let typing = Validate.validate_graph session in
  check_int "all 21 persons" 21 (Typing.cardinal typing)

let test_missing_label () =
  let session = Validate.session person_schema example2_graph in
  let outcome = Validate.check session (node "john") (label "Ghost") in
  check_bool "missing label fails" false outcome.Validate.ok;
  check_bool "reason" true (Validate.reason outcome <> None);
  (match outcome.Validate.explain with
  | Some (Explain.No_shape _) -> ()
  | _ -> Alcotest.fail "expected a No_shape explanation")

(* ------------------------------------------------------------------ *)
(* Typing operations                                                  *)
(* ------------------------------------------------------------------ *)

let test_typing_ops () =
  let t1 = Typing.singleton (node "a") person in
  let t2 = Typing.add (node "a") (label "Other") Typing.empty in
  let t = Typing.combine t1 t2 in
  check_int "two labels on a" 2 (Typing.cardinal t);
  check_bool "mem" true (Typing.mem (node "a") person t);
  check_int "one node" 1 (List.length (Typing.nodes t));
  check_bool "empty" true (Typing.is_empty Typing.empty);
  check_int "to_list" 2 (List.length (Typing.to_list t));
  Alcotest.check typing "combine idempotent" t (Typing.combine t t)

let suites =
  [ ( "schema",
      [ Alcotest.test_case "build and lookup" `Quick test_schema_build;
        Alcotest.test_case "duplicate labels" `Quick test_schema_duplicate;
        Alcotest.test_case "undefined references" `Quick
          test_schema_undefined_ref;
        Alcotest.test_case "recursion detection" `Quick
          test_schema_recursion_detection;
        Alcotest.test_case "dependencies" `Quick test_schema_dependencies ]
    );
    ( "validate.example2",
      [ Alcotest.test_case "john/bob yes, mary no" `Quick test_example2;
        Alcotest.test_case "backtracking engine agrees" `Quick
          test_example2_backtracking_engine;
        Alcotest.test_case "auto engine agrees" `Quick
          test_example2_auto_engine;
        Alcotest.test_case "typing includes neighbours" `Quick
          test_example2_typing;
        Alcotest.test_case "validate_graph" `Quick test_validate_graph;
        Alcotest.test_case "failure reasons" `Quick test_failure_reason ] );
    ( "validate.recursion",
      [ Alcotest.test_case "two-node cycle" `Quick test_recursive_cycle;
        Alcotest.test_case "self-loop" `Quick test_self_loop;
        Alcotest.test_case "invalid neighbour propagates" `Quick
          test_invalid_neighbour_propagates;
        Alcotest.test_case "Example 13" `Quick test_example13;
        Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
        Alcotest.test_case "memoised hub" `Quick
          test_memoisation_consistency;
        Alcotest.test_case "missing label" `Quick test_missing_label ] );
    ( "validate.typing",
      [ Alcotest.test_case "typing operations" `Quick test_typing_ops ] ) ]

(* Tests for the derivative matcher (§6–7), reproducing the paper's
   worked Examples 9, 11 and 12, plus edge cases and extensions. *)

open Util
open Shex

let dt s p o = Neigh.out (t3 s p o)

(* Example 9: ∂⟨n,a,1⟩(a→1 ‖ (b→{1,2})⋆) = (b→{1,2})⋆ *)
let test_example9 () =
  let d = Deriv.deriv (dt "n" "a" (num 1)) example5 in
  Alcotest.check rse "derivative" (Rse.star (arc_num "b" [ 1; 2 ])) d

(* Example 11: e ≃ {⟨n,a,1⟩, ⟨n,b,1⟩, ⟨n,b,2⟩} succeeds *)
let test_example11 () =
  check_bool "matches" true
    (Deriv.matches (node "n") example8_graph example5)

(* Example 12: e ≄ {⟨n,a,1⟩, ⟨n,a,2⟩, ⟨n,b,1⟩} — the second a-arc has
   no matching arc and the derivative collapses to ∅. *)
let test_example12 () =
  check_bool "fails" false
    (Deriv.matches (node "n") example12_graph example5)

(* Example 10: the derivative of the balance-checker grows:
   ∂⟨n,a,1⟩(e) = b→{1,2} ‖ e. *)
let test_example10_growth () =
  let d = Deriv.deriv (dt "n" "a" (num 1)) example10 in
  check_bool "grows" true (Rse.size d > Rse.size example10);
  Alcotest.check rse "paper's derivative"
    (Rse.and_ (arc_num "b" [ 1; 2 ]) example10)
    d

(* Derivative algebra on the remaining constructors *)

let test_deriv_empty_epsilon () =
  let t = dt "n" "a" (num 1) in
  Alcotest.check rse "∂t(∅) = ∅" Rse.empty (Deriv.deriv t Rse.empty);
  Alcotest.check rse "∂t(ε) = ∅" Rse.empty (Deriv.deriv t Rse.epsilon)

let test_deriv_arc () =
  let a = arc_num "a" [ 1 ] in
  Alcotest.check rse "hit" Rse.epsilon (Deriv.deriv (dt "n" "a" (num 1)) a);
  Alcotest.check rse "wrong value" Rse.empty
    (Deriv.deriv (dt "n" "a" (num 2)) a);
  Alcotest.check rse "wrong predicate" Rse.empty
    (Deriv.deriv (dt "n" "b" (num 1)) a)

let test_deriv_or () =
  let e = Rse.or_ (arc_num "a" [ 1 ]) (arc_num "b" [ 1 ]) in
  Alcotest.check rse "left branch survives" Rse.epsilon
    (Deriv.deriv (dt "n" "a" (num 1)) e)

let test_deriv_star () =
  let e = Rse.star (arc_num "b" [ 1; 2 ]) in
  Alcotest.check rse "∂t(e*) = ∂t(e) ‖ e*" e
    (Deriv.deriv (dt "n" "b" (num 1)) e)

let test_deriv_graph_empty () =
  Alcotest.check rse "∂{}(e) = e" example5 (Deriv.deriv_graph [] example5)

(* Matching corner cases *)

let test_match_empty_graph () =
  check_bool "ε matches empty" true
    (Deriv.matches (node "n") Rdf.Graph.empty Rse.epsilon);
  check_bool "∅ rejects empty" false
    (Deriv.matches (node "n") Rdf.Graph.empty Rse.empty);
  check_bool "e* matches empty" true
    (Deriv.matches (node "n") Rdf.Graph.empty (Rse.star (arc_num "a" [ 1 ])));
  check_bool "arc rejects empty" false
    (Deriv.matches (node "n") Rdf.Graph.empty (arc_num "a" [ 1 ]))

let test_match_ignores_other_subjects () =
  (* Only Σgn (subject = n) is consumed. *)
  let g = Rdf.Graph.add (t3 "m" "z" (num 9)) example8_graph in
  check_bool "other subjects irrelevant" true
    (Deriv.matches (node "n") g example5)

let test_match_plus () =
  let e = Rse.plus (arc_num "b" [ 1; 2 ]) in
  let g1 = graph_of [ t3 "n" "b" (num 1) ] in
  let g0 = Rdf.Graph.empty in
  check_bool "one b" true (Deriv.matches (node "n") g1 e);
  check_bool "zero b" false (Deriv.matches (node "n") g0 e);
  let g2 = graph_of [ t3 "n" "b" (num 1); t3 "n" "b" (num 2) ] in
  check_bool "two b" true (Deriv.matches (node "n") g2 e)

let test_match_repeat () =
  let e = Rse.repeat 1 (Some 2) (arc_num "b" [ 1; 2; 3 ]) in
  let g k = graph_of (List.init k (fun j -> t3 "n" "b" (num (j + 1)))) in
  check_bool "0 fails" false (Deriv.matches (node "n") (g 0) e);
  check_bool "1 ok" true (Deriv.matches (node "n") (g 1) e);
  check_bool "2 ok" true (Deriv.matches (node "n") (g 2) e);
  check_bool "3 fails" false (Deriv.matches (node "n") (g 3) e)

(* Bag (each-triple-consumed-once) semantics: a ‖ a needs two a-arcs,
   but a graph is a set, so a single arc cannot satisfy both. *)
let test_bag_semantics () =
  let e = Rse.and_ (arc_num "a" [ 1 ]) (arc_num "a" [ 1 ]) in
  let g = graph_of [ t3 "n" "a" (num 1) ] in
  check_bool "single triple can't satisfy a ‖ a" false
    (Deriv.matches (node "n") g e)

(* Value set machinery through matching *)

let test_match_datatype () =
  let e =
    Rse.and_
      (Rse.arc_v (Value_set.Pred (ex "age")) Value_set.xsd_integer)
      (Rse.plus (Rse.arc_v (Value_set.Pred (ex "name")) Value_set.xsd_string))
  in
  let good =
    graph_of
      [ t3 "n" "age" (num 23); t3 "n" "name" (Rdf.Term.str "John") ]
  in
  let bad_type =
    graph_of
      [ t3 "n" "age" (Rdf.Term.str "old");
        t3 "n" "name" (Rdf.Term.str "John") ]
  in
  check_bool "well-typed" true (Deriv.matches (node "n") good e);
  check_bool "age not integer" false (Deriv.matches (node "n") bad_type e)

let test_match_node_kinds () =
  let e = Rse.arc_v (Value_set.Pred (ex "p")) (Value_set.Obj_kind Value_set.Iri_kind) in
  let g_iri = graph_of [ t3 "n" "p" (node "x") ] in
  let g_lit = graph_of [ t3 "n" "p" (num 1) ] in
  check_bool "iri ok" true (Deriv.matches (node "n") g_iri e);
  check_bool "literal not iri" false (Deriv.matches (node "n") g_lit e)

(* Extensions: inverse arcs and negation *)

let test_inverse_arcs () =
  (* shape: node must have one incoming "manages" arc *)
  let e =
    Rse.arc_v ~inverse:true (Value_set.Pred (ex "manages")) Value_set.Obj_any
  in
  let g = graph_of [ triple (node "boss") (ex "manages") (node "n") ] in
  check_bool "incoming arc found" true (Deriv.matches (node "n") g e);
  check_bool "outgoing arc is not incoming" false
    (Deriv.matches (node "boss") g e)

let test_inverse_mixed () =
  let e =
    Rse.and_
      (arc_num "a" [ 1 ])
      (Rse.arc_v ~inverse:true (Value_set.Pred (ex "r")) Value_set.Obj_any)
  in
  let g =
    graph_of
      [ t3 "n" "a" (num 1); triple (node "m") (ex "r") (node "n") ]
  in
  check_bool "outgoing + incoming" true (Deriv.matches (node "n") g e)

let test_negation () =
  (* ¬(a→1): any neighbourhood except exactly {⟨n,a,1⟩} *)
  let e = Rse.not_ (arc_num "a" [ 1 ]) in
  check_bool "empty neighbourhood ok" true
    (Deriv.matches (node "n") Rdf.Graph.empty e);
  check_bool "the single a-arc rejected" false
    (Deriv.matches (node "n") (graph_of [ t3 "n" "a" (num 1) ]) e);
  check_bool "two arcs ok" true
    (Deriv.matches (node "n")
       (graph_of [ t3 "n" "a" (num 1); t3 "n" "b" (num 1) ])
       e)

let test_negation_combined () =
  (* a→1 ‖ ¬∅ — ¬∅ matches anything, so this asks for a→1 plus any rest.
     With bag semantics the rest is the remaining triples. *)
  let e = Rse.and_ (arc_num "a" [ 1 ]) (Rse.not_ Rse.empty) in
  check_bool "a plus anything" true
    (Deriv.matches (node "n") example8_graph e);
  check_bool "missing a" false
    (Deriv.matches (node "n") (graph_of [ t3 "n" "b" (num 1) ]) e)

(* Traces *)

let test_trace_success () =
  let tr = Deriv.matches_trace (node "n") example8_graph example5 in
  check_bool "result" true tr.Deriv.result;
  check_int "3 steps" 3 (List.length tr.Deriv.steps);
  check_bool "no failure explanation" true
    (Deriv.explain_failure tr = None)

let test_trace_failure_collapse () =
  let tr = Deriv.matches_trace (node "n") example12_graph example5 in
  check_bool "result" false tr.Deriv.result;
  match Deriv.explain_failure tr with
  | Some msg ->
      check_bool "mentions collapse" true
        (let has_sub sub s =
           let n = String.length s and m = String.length sub in
           let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
           go 0
         in
         has_sub "matches no arc" msg)
  | None -> Alcotest.fail "expected an explanation"

let test_trace_failure_residual () =
  (* Missing required arc: all triples consumed, residual not nullable. *)
  let e = Rse.and_ (arc_num "a" [ 1 ]) (arc_num "b" [ 1 ]) in
  let tr =
    Deriv.matches_trace (node "n") (graph_of [ t3 "n" "a" (num 1) ]) e
  in
  check_bool "result" false tr.Deriv.result;
  match Deriv.explain_failure tr with
  | Some msg ->
      check_bool "mentions obligations" true
        (let has_sub sub s =
           let n = String.length s and m = String.length sub in
           let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
           go 0
         in
         has_sub "obligations remain" msg)
  | None -> Alcotest.fail "expected an explanation"

let test_trace_pp () =
  let tr = Deriv.matches_trace (node "n") example8_graph example5 in
  let s = Format.asprintf "%a" Deriv.pp_trace tr in
  check_bool "non-empty rendering" true (String.length s > 40)

(* Ablation: raw constructors must not change verdicts, only sizes. *)

let test_raw_ctors_same_verdict () =
  List.iter
    (fun (g, expected) ->
      check_bool "raw verdict" expected
        (Deriv.matches ~ctors:Rse.raw_ctors (node "n") g example5))
    [ (example8_graph, true); (example12_graph, false) ]

let test_raw_ctors_blowup () =
  let raw =
    Deriv.deriv_graph ~ctors:Rse.raw_ctors
      (List.map Neigh.out (Rdf.Graph.to_list example8_graph))
      example5
  in
  let smart =
    Deriv.deriv_graph
      (List.map Neigh.out (Rdf.Graph.to_list example8_graph))
      example5
  in
  check_bool "raw bigger" true (Rse.size raw > Rse.size smart)

let suites =
  [ ( "deriv.paper-examples",
      [ Alcotest.test_case "Example 9 derivative" `Quick test_example9;
        Alcotest.test_case "Example 11 match" `Quick test_example11;
        Alcotest.test_case "Example 12 mismatch" `Quick test_example12;
        Alcotest.test_case "Example 10 growth" `Quick test_example10_growth ]
    );
    ( "deriv.rules",
      [ Alcotest.test_case "∅ and ε" `Quick test_deriv_empty_epsilon;
        Alcotest.test_case "arc" `Quick test_deriv_arc;
        Alcotest.test_case "or" `Quick test_deriv_or;
        Alcotest.test_case "star" `Quick test_deriv_star;
        Alcotest.test_case "graph extension base case" `Quick
          test_deriv_graph_empty ] );
    ( "deriv.matching",
      [ Alcotest.test_case "empty graph" `Quick test_match_empty_graph;
        Alcotest.test_case "other subjects ignored" `Quick
          test_match_ignores_other_subjects;
        Alcotest.test_case "plus cardinality" `Quick test_match_plus;
        Alcotest.test_case "repeat cardinality" `Quick test_match_repeat;
        Alcotest.test_case "bag semantics" `Quick test_bag_semantics;
        Alcotest.test_case "datatype values" `Quick test_match_datatype;
        Alcotest.test_case "node kinds" `Quick test_match_node_kinds ] );
    ( "deriv.extensions",
      [ Alcotest.test_case "inverse arcs" `Quick test_inverse_arcs;
        Alcotest.test_case "mixed directions" `Quick test_inverse_mixed;
        Alcotest.test_case "negation" `Quick test_negation;
        Alcotest.test_case "negation combined" `Quick test_negation_combined
      ] );
    ( "deriv.trace",
      [ Alcotest.test_case "success trace" `Quick test_trace_success;
        Alcotest.test_case "collapse explanation" `Quick
          test_trace_failure_collapse;
        Alcotest.test_case "residual explanation" `Quick
          test_trace_failure_residual;
        Alcotest.test_case "trace rendering" `Quick test_trace_pp ] );
    ( "deriv.ablation",
      [ Alcotest.test_case "raw ctors same verdict" `Quick
          test_raw_ctors_same_verdict;
        Alcotest.test_case "raw ctors blow up" `Quick test_raw_ctors_blowup
      ] ) ]

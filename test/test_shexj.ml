(* Tests for ShExJ (JSON) schema interchange. *)

open Util
open Shex

let prelude =
  "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
   PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n\
   PREFIX ex: <http://example.org/>\n"

let parse_shexc src =
  match Shexc.Shexc_parser.parse_schema src with
  | Ok s -> s
  | Error msg -> Alcotest.fail msg

let schemas_equal s1 s2 =
  let rules1 = Schema.rules s1 and rules2 = Schema.rules s2 in
  List.length rules1 = List.length rules2
  && List.for_all2
       (fun (l1, e1) (l2, e2) -> Label.equal l1 l2 && Rse.equal e1 e2)
       rules1 rules2

let roundtrip schema =
  match Shexc.Shexj.import (Shexc.Shexj.export schema) with
  | Ok s -> s
  | Error msg -> Alcotest.fail ("import failed: " ^ msg)

let test_roundtrip_example1 () =
  let schema =
    parse_shexc
      (prelude
      ^ "<Person> { foaf:age xsd:integer , foaf:name xsd:string+ , \
         foaf:knows @<Person>* }")
  in
  check_bool "roundtrip" true (schemas_equal schema (roundtrip schema))

let test_roundtrip_rich () =
  let schema =
    parse_shexc
      (prelude
      ^ "<T> {\n\
        \  ex:a xsd:integer? , ex:b [ 1 2 \"x\" \"y\"@en ex:v ] ,\n\
        \  ex:c IRI{2,4} , ex:d . , ^ex:e LITERAL ,\n\
        \  ( ex:f BNODE | ex:g NONLITERAL ) ,\n\
        \  ex:h [ <http://example.org/stems/>~ ex:w ]\n\
         }\n\
         <U> {}\n")
  in
  check_bool "roundtrip" true (schemas_equal schema (roundtrip schema))

let test_roundtrip_negation () =
  let schema =
    Schema.make_exn
      [ (Label.of_string "Base", Util.arc_num "p" [ 1 ]);
        ( Label.of_string "Neg",
          Rse.not_
            (Rse.arc_ref
               (Value_set.Pred (Rdf.Iri.of_string_exn "http://example.org/q"))
               (Label.of_string "Base")) ) ]
  in
  check_bool "roundtrip with Not" true
    (schemas_equal schema (roundtrip schema))

let test_export_structure () =
  let schema =
    parse_shexc (prelude ^ "<T> { foaf:age xsd:integer , foaf:name xsd:string* }")
  in
  let j = Shexc.Shexj.export schema in
  Alcotest.(check (option string)) "type" (Some "Schema")
    (Json.find_string "type" j);
  match Json.find_list "shapes" j with
  | Some [ shape ] -> (
      Alcotest.(check (option string)) "id" (Some "T")
        (Json.find_string "id" shape);
      check_bool "closed" true (Json.find "closed" shape = Some (Json.Bool true));
      match Json.find "expression" shape with
      | Some expr -> (
          Alcotest.(check (option string)) "EachOf" (Some "EachOf")
            (Json.find_string "type" expr);
          match Json.find_list "expressions" expr with
          | Some [ tc1; tc2 ] ->
              Alcotest.(check (option string))
                "tc type" (Some "TripleConstraint")
                (Json.find_string "type" tc1);
              Alcotest.(check (option int)) "star min" (Some 0)
                (Json.find_int "min" tc2);
              Alcotest.(check (option int)) "star max" (Some (-1))
                (Json.find_int "max" tc2)
          | _ -> Alcotest.fail "expected two triple constraints")
      | None -> Alcotest.fail "expected an expression")
  | _ -> Alcotest.fail "expected one shape"

let test_export_json_is_valid () =
  let schema =
    parse_shexc (prelude ^ "<T> { ex:p [ 1 \"s\" ] , ex:q @<T>? }")
  in
  let text = Shexc.Shexj.export_string schema in
  check_bool "parses as JSON" true (Result.is_ok (Json.of_string text));
  let minified = Shexc.Shexj.export_string ~minify:true schema in
  check_bool "minified parses" true (Result.is_ok (Json.of_string minified));
  check_bool "minified is one line" true
    (not (String.contains minified '\n'))

let test_import_plain_shexj () =
  (* Hand-written ShExJ in the standard style. *)
  let src =
    {|{
  "type": "Schema",
  "shapes": [
    { "type": "Shape", "id": "Employee", "closed": true,
      "expression": {
        "type": "EachOf",
        "expressions": [
          { "type": "TripleConstraint",
            "predicate": "http://example.org/name",
            "valueExpr": { "type": "NodeConstraint",
                           "datatype": "http://www.w3.org/2001/XMLSchema#string" } },
          { "type": "TripleConstraint",
            "predicate": "http://example.org/boss",
            "valueExpr": "Employee",
            "min": 0, "max": 1 }
        ]
      }
    }
  ]
}|}
  in
  match Shexc.Shexj.import_string src with
  | Error msg -> Alcotest.fail msg
  | Ok schema ->
      let employee = Label.of_string "Employee" in
      check_bool "has Employee" true (Schema.mem schema employee);
      check_bool "recursive" true (Schema.is_recursive schema employee);
      (* And it validates. *)
      let g =
        graph_of
          [ triple (node "e1")
              (Rdf.Iri.of_string_exn "http://example.org/name")
              (Rdf.Term.str "Ann");
            triple (node "e1")
              (Rdf.Iri.of_string_exn "http://example.org/boss")
              (node "e2");
            triple (node "e2")
              (Rdf.Iri.of_string_exn "http://example.org/name")
              (Rdf.Term.str "Zoe") ]
      in
      let session = Validate.session schema g in
      check_bool "e1 valid" true
        (Validate.check_bool session (node "e1") employee)

let test_import_errors () =
  List.iter
    (fun src ->
      check_bool src true (Result.is_error (Shexc.Shexj.import_string src)))
    [ "{}";
      "{\"type\": \"Schema\"}";
      "{\"type\": \"Schema\", \"shapes\": [{\"type\": \"Shape\"}]}";
      "{\"type\": \"Schema\", \"shapes\": [{\"id\": \"S\", \"expression\": \
       {\"type\": \"Mystery\"}}]}";
      "{\"type\": \"Schema\", \"shapes\": [{\"id\": \"S\", \"expression\": \
       {\"type\": \"TripleConstraint\"}}]}";
      "not json at all" ]

let test_semantic_equivalence_after_roundtrip () =
  (* Validation verdicts agree before and after the JSON round-trip. *)
  let schema =
    parse_shexc
      (prelude
      ^ "<Person> { foaf:age xsd:integer , foaf:name xsd:string+ , \
         foaf:knows @<Person>* }")
  in
  let schema' = roundtrip schema in
  let foaf l = Rdf.Iri.of_string_exn ("http://xmlns.com/foaf/0.1/" ^ l) in
  let g =
    graph_of
      [ triple (node "john") (foaf "age") (num 23);
        triple (node "john") (foaf "name") (Rdf.Term.str "John");
        triple (node "mary") (foaf "age") (num 50);
        triple (node "mary") (foaf "age") (num 65) ]
  in
  let person = Label.of_string "Person" in
  let s1 = Validate.session schema g and s2 = Validate.session schema' g in
  List.iter
    (fun who ->
      check_bool who true
        (Bool.equal
           (Validate.check_bool s1 (node who) person)
           (Validate.check_bool s2 (node who) person)))
    [ "john"; "mary" ]

let suites =
  [ ( "shexj",
      [ Alcotest.test_case "roundtrip Example 1" `Quick
          test_roundtrip_example1;
        Alcotest.test_case "roundtrip rich schema" `Quick
          test_roundtrip_rich;
        Alcotest.test_case "roundtrip negation" `Quick
          test_roundtrip_negation;
        Alcotest.test_case "export structure" `Quick test_export_structure;
        Alcotest.test_case "export is valid JSON" `Quick
          test_export_json_is_valid;
        Alcotest.test_case "import hand-written ShExJ" `Quick
          test_import_plain_shexj;
        Alcotest.test_case "import errors" `Quick test_import_errors;
        Alcotest.test_case "semantic equivalence" `Quick
          test_semantic_equivalence_after_roundtrip ] ) ]

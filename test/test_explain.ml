(* The provenance layer: structured blame sets (Explain), the
   span-tree recorder (Shex_explain.Trace), its exporters, and the
   property that tracing never changes a verdict. *)

open Util
open Shex

let focus = node "n"
let s_label = Label.of_string "S"

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Explain: required arcs and blame-set extraction                    *)
(* ------------------------------------------------------------------ *)

let test_required_arcs () =
  let a = arc_num "a" [ 1 ] and b = arc_num "b" [ 1 ] in
  check_int "an arc demands itself" 1 (List.length (Explain.required_arcs a));
  check_int "a star demands nothing" 0
    (List.length (Explain.required_arcs (Rse.star a)));
  check_int "and demands both non-nullable conjuncts" 2
    (List.length (Explain.required_arcs (Rse.and_ a b)));
  check_int "and skips its nullable conjunct" 1
    (List.length (Explain.required_arcs (Rse.and_ a (Rse.star b))));
  check_int "a nullable or demands nothing" 0
    (List.length (Explain.required_arcs (Rse.opt a)));
  check_int "a non-nullable or offers both sides" 2
    (List.length (Explain.required_arcs (Rse.or_ a b)))

let test_of_trace_pass () =
  let tr = Deriv.matches_trace focus example8_graph example5 in
  check_bool "no explanation for an accepting trace" true
    (Explain.of_trace ~node:focus ~label:s_label tr = None)

let test_blame_triple () =
  (* Example 12: the second a-triple drives the residual to ∅. *)
  let tr = Deriv.matches_trace focus example12_graph example5 in
  match Explain.of_trace ~node:focus ~label:s_label tr with
  | Some (Explain.Blame_triple { node = n; triple; ref_failures; _ }) ->
      Alcotest.check term "blames the focus node" focus n;
      check_string "blames an a-triple" "http://example.org/a"
        (Rdf.Iri.to_string (Rdf.Triple.predicate triple.Neigh.triple));
      check_int "no reference failures" 0 (List.length ref_failures)
  | _ -> Alcotest.fail "expected Blame_triple"

let test_missing_arcs () =
  let e = Rse.and_ (arc_num "a" [ 1 ]) (arc_num "b" [ 1 ]) in
  let g = graph_of [ t3 "n" "a" (num 1) ] in
  let tr = Deriv.matches_trace focus g e in
  match Explain.of_trace ~node:focus ~label:s_label tr with
  | Some (Explain.Missing_arcs { missing; residual; _ }) ->
      check_bool "residual is not nullable" false (Rse.nullable residual);
      check_int "exactly the b-arc is missing" 1 (List.length missing);
      check_bool "message names the missing arc" true
        (contains
           (Explain.to_string
              (Explain.Missing_arcs
                 { node = focus; label = s_label; residual; missing }))
           "missing:")
  | _ -> Alcotest.fail "expected Missing_arcs"

let test_no_shape_names_node () =
  let msg =
    Explain.to_string
      (Explain.No_shape { node = focus; label = Label.of_string "Missing" })
  in
  check_bool "names the focus node" true
    (contains msg "<http://example.org/n>");
  check_bool "names the label" true (contains msg "Missing")

let test_to_json_kinds () =
  let json ex = Json.to_string ~minify:true (Explain.to_json ex) in
  check_bool "no_shape kind" true
    (contains
       (json (Explain.No_shape { node = focus; label = s_label }))
       {|"kind":"no_shape"|});
  let tr = Deriv.matches_trace focus example12_graph example5 in
  match Explain.of_trace ~node:focus ~label:s_label tr with
  | Some ex ->
      let s = json ex in
      check_bool "blame_triple kind" true (contains s {|"kind":"blame_triple"|});
      check_bool "carries the residual" true (contains s {|"residual"|})
  | None -> Alcotest.fail "expected a failing trace"

(* ------------------------------------------------------------------ *)
(* Trace recorder (injected clock)                                    *)
(* ------------------------------------------------------------------ *)

let clocked () =
  let t = ref 0.0 in
  (t, Shex_explain.Trace.create ~clock:(fun () -> !t) ())

let test_recorder_tree () =
  let t, r = clocked () in
  let sink = Shex_explain.Trace.sink r in
  sink (Telemetry.span_begin "check" [ ("node", Telemetry.String "n") ]);
  t := 5e-6;
  sink (Telemetry.instant "deriv_step" [ ("focus", Telemetry.String "n") ]);
  t := 20e-6;
  sink (Telemetry.span_end "check" [ ("ok", Telemetry.Bool true) ]);
  check_int "three events delivered" 3 (Shex_explain.Trace.events r);
  match Shex_explain.Trace.roots r with
  | [ span ] ->
      check_string "span name" "check" span.Shex_explain.Trace.name;
      check_int "span duration" 20 span.Shex_explain.Trace.dur;
      check_bool "begin field kept" true
        (Shex_explain.Trace.string_arg span "node" = Some "n");
      check_bool "end field merged" true
        (Shex_explain.Trace.arg span "ok" = Some (Telemetry.Bool true));
      (match Shex_explain.Trace.children span with
      | [ child ] ->
          check_string "instant attached" "deriv_step"
            child.Shex_explain.Trace.name;
          check_bool "instants are not spans" false
            child.Shex_explain.Trace.is_span;
          check_int "instant timestamp" 5 child.Shex_explain.Trace.ts
      | cs -> Alcotest.fail (Printf.sprintf "%d children" (List.length cs)))
  | roots -> Alcotest.fail (Printf.sprintf "%d roots" (List.length roots))

let test_recorder_unwinds_abandoned () =
  (* An end event whose name skips an open inner span (an exception
     unwound past it) closes the straggler first. *)
  let t, r = clocked () in
  let sink = Shex_explain.Trace.sink r in
  sink (Telemetry.span_begin "outer" []);
  t := 2e-6;
  sink (Telemetry.span_begin "inner" []);
  t := 9e-6;
  sink (Telemetry.span_end "outer" []);
  match Shex_explain.Trace.roots r with
  | [ outer ] -> (
      check_string "outer survives" "outer" outer.Shex_explain.Trace.name;
      check_int "outer duration" 9 outer.Shex_explain.Trace.dur;
      match Shex_explain.Trace.children outer with
      | [ inner ] ->
          check_string "inner closed underneath" "inner"
            inner.Shex_explain.Trace.name;
          check_int "inner closed at the end event" 7
            inner.Shex_explain.Trace.dur
      | cs -> Alcotest.fail (Printf.sprintf "%d children" (List.length cs)))
  | roots -> Alcotest.fail (Printf.sprintf "%d roots" (List.length roots))

let test_recorder_finish_idempotent () =
  let t, r = clocked () in
  let sink = Shex_explain.Trace.sink r in
  sink (Telemetry.span_begin "check" []);
  t := 4e-6;
  Shex_explain.Trace.finish r;
  Shex_explain.Trace.finish r;
  check_int "one root after double finish" 1
    (List.length (Shex_explain.Trace.roots r))

(* ------------------------------------------------------------------ *)
(* Exporters                                                          *)
(* ------------------------------------------------------------------ *)

let recorded_check () =
  let t, r = clocked () in
  let sink = Shex_explain.Trace.sink r in
  sink
    (Telemetry.span_begin "check"
       [ ("node", Telemetry.String "n"); ("shape", Telemetry.String "S") ]);
  t := 5e-6;
  sink (Telemetry.instant "deriv_step" [ ("focus", Telemetry.String "n") ]);
  t := 20e-6;
  sink (Telemetry.span_end "check" [ ("ok", Telemetry.Bool true) ]);
  r

let test_export_chrome () =
  let r = recorded_check () in
  let s = Json.to_string ~minify:true (Shex_explain.Export.chrome_json r) in
  List.iter
    (fun sub ->
      check_bool (Printf.sprintf "contains %s" sub) true (contains s sub))
    [ {|"traceEvents":|}; {|"ph":"X"|}; {|"name":"check"|}; {|"dur":20|};
      {|"ph":"i"|}; {|"s":"t"|}; {|"displayTimeUnit":"ms"|} ]

let test_export_folded () =
  let r = recorded_check () in
  (* Self time is the span's 20 µs: instants don't consume time. *)
  check_string "one stack line" "check:n@S 20\n"
    (Shex_explain.Export.folded r)

let test_export_folded_nested () =
  let t, r = clocked () in
  let sink = Shex_explain.Trace.sink r in
  sink (Telemetry.span_begin "solve" []);
  t := 2e-6;
  sink
    (Telemetry.span_begin "check"
       [ ("node", Telemetry.String "n"); ("shape", Telemetry.String "S") ]);
  t := 12e-6;
  sink (Telemetry.span_end "check" []);
  t := 15e-6;
  sink (Telemetry.span_end "solve" []);
  check_string "child time subtracted from the parent"
    "solve 5\nsolve;check:n@S 10\n"
    (Shex_explain.Export.folded r)

(* ------------------------------------------------------------------ *)
(* Tracing never changes a verdict                                     *)
(* ------------------------------------------------------------------ *)

let traced_registry () =
  let tele = Telemetry.create () in
  let r = Shex_explain.Trace.create () in
  Telemetry.set_sink tele (Some (Shex_explain.Trace.sink r));
  Telemetry.set_residuals tele true;
  tele

let prop_matcher_tracing_preserves_verdict =
  QCheck.Test.make ~count:300
    ~name:"matcher verdicts identical with tracing on/off"
    Test_props.arb_rse_graph (fun (e, g) ->
      let plain = Deriv.matches focus g e in
      let traced =
        Deriv.matches ~instr:(Deriv.instruments (traced_registry ())) focus g e
      in
      Bool.equal plain traced)

let prop_session_tracing_preserves_verdict =
  QCheck.Test.make ~count:200
    ~name:"session verdicts identical with tracing on/off"
    Test_props.arb_rse_graph (fun (e, g) ->
      match Schema.make [ (s_label, e) ] with
      | Error _ -> QCheck.assume_fail ()
      | Ok schema ->
          let plain =
            Validate.check_bool (Validate.session schema g) focus s_label
          in
          let traced =
            Validate.check_bool
              (Validate.session ~telemetry:(traced_registry ()) schema g)
              focus s_label
          in
          Bool.equal plain traced)

let suites =
  [ ( "explain",
      [ Alcotest.test_case "required_arcs" `Quick test_required_arcs;
        Alcotest.test_case "of_trace on success" `Quick test_of_trace_pass;
        Alcotest.test_case "blame triple (Example 12)" `Quick
          test_blame_triple;
        Alcotest.test_case "missing arcs" `Quick test_missing_arcs;
        Alcotest.test_case "no-shape message names the node" `Quick
          test_no_shape_names_node;
        Alcotest.test_case "to_json kinds" `Quick test_to_json_kinds ] );
    ( "provenance trace",
      [ Alcotest.test_case "span tree with injected clock" `Quick
          test_recorder_tree;
        Alcotest.test_case "abandoned sections unwind" `Quick
          test_recorder_unwinds_abandoned;
        Alcotest.test_case "finish is idempotent" `Quick
          test_recorder_finish_idempotent;
        Alcotest.test_case "chrome trace-event export" `Quick
          test_export_chrome;
        Alcotest.test_case "folded stacks" `Quick test_export_folded;
        Alcotest.test_case "folded stacks subtract child time" `Quick
          test_export_folded_nested ] );
    ( "tracing invariance",
      List.map QCheck_alcotest.to_alcotest
        [ prop_matcher_tracing_preserves_verdict;
          prop_session_tracing_preserves_verdict ] ) ]

(* Interop tour: shape maps, validation reports, ShExJ interchange,
   skolemization/isomorphism, and the SPARQL engine driven from query
   text.

   Run with: dune exec examples/interop.exe *)

let schema_src =
  {|PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
PREFIX ex: <http://example.org/>

<Person> IRI {
  a [ ex:Employee ]
  , foaf:age xsd:integer
  , foaf:name xsd:string+
  , foaf:knows @<Person>*
}
|}

let data_src =
  {|@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix ex: <http://example.org/> .
@prefix : <http://example.org/people/> .

:john a ex:Employee ; foaf:age 23; foaf:name "John"; foaf:knows :bob .
:bob a ex:Employee ; foaf:age 34; foaf:name "Bob", "Robert" .
:mary a ex:Employee ; foaf:age 50, 65 .
[] foaf:age 30 ; foaf:name "Mystery" .
|}

let () =
  let schema = Shexc.Shexc_parser.parse_schema_exn schema_src in
  let graph = Turtle.Parse.parse_graph_exn data_src in
  let session = Shex.Validate.session schema graph in

  (* 1. Shape maps: validate every ex:Employee against <Person>. *)
  let shape_map =
    Shex.Shape_map.parse_exn "{FOCUS a ex:Employee}@<Person>"
  in
  let report = Shex.Report.run_shape_map session shape_map graph in
  Format.printf "Report for {FOCUS a ex:Employee}@@<Person>:@.%a@.@."
    Shex.Report.pp report;

  (* 2. The same report as a result shape map and as JSON. *)
  Format.printf "Result shape map:@.%s@.@."
    (Shex.Report.to_result_shape_map report);
  Format.printf "JSON (minified):@.%s@.@."
    (Json.to_string ~minify:true (Shex.Report.to_json report));

  (* 3. ShExJ interchange: export, reimport, verify equivalence. *)
  let shexj = Shexc.Shexj.export_string schema in
  Format.printf "ShExJ export (%d bytes); reimport ok: %b@.@."
    (String.length shexj)
    (match Shexc.Shexj.import_string shexj with
    | Ok schema' ->
        let person = Shex.Label.of_string "Person" in
        let s' = Shex.Validate.session schema' graph in
        List.for_all
          (fun n ->
            Bool.equal
              (Shex.Validate.check_bool session n person)
              (Shex.Validate.check_bool s' n person))
          (Rdf.Graph.subjects graph)
    | Error _ -> false);

  (* 4. Skolemization: name the anonymous node, validate, map back. *)
  let sk = Rdf.Skolem.skolemize graph in
  Format.printf
    "Skolemized graph has %d blank nodes (original had %d); roundtrip \
     isomorphic: %b@.@."
    (List.length
       (List.filter Rdf.Term.is_bnode (Rdf.Graph.nodes sk)))
    (List.length
       (List.filter Rdf.Term.is_bnode (Rdf.Graph.nodes graph)))
    (Rdf.Isomorphism.isomorphic graph (Rdf.Skolem.unskolemize sk));

  (* 5. The SPARQL engine, driven from concrete syntax. *)
  let query =
    {|PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?s {
  { SELECT ?s (COUNT(*) AS ?c) { ?s foaf:age ?o } GROUP BY ?s
    HAVING (?c >= 2) }
}|}
  in
  match Sparql.Parse.parse query with
  | Error msg -> failwith msg
  | Ok q -> (
      match Sparql.Eval.run graph q with
      | `Solutions sols ->
          Format.printf "Nodes with more than one foaf:age (via SPARQL):@.";
          List.iter
            (fun mu ->
              match Sparql.Eval.Solution.find "s" mu with
              | Some t -> Format.printf "  %a@." Rdf.Term.pp t
              | None -> ())
            sols
      | `Boolean _ -> ())

(* Schema inference: bootstrap a ShEx schema from example nodes, then
   use it to validate the rest of the portal.

   Run with: dune exec examples/schema_inference.exe *)

let () =
  (* A portal whose schema we pretend not to know. *)
  let { Workload.Foaf_gen.graph; valid; invalid } =
    Workload.Foaf_gen.generate
      { Workload.Foaf_gen.n_persons = 200;
        invalid_fraction = 0.15;
        knows_degree = 2;
        seed = 77 }
  in
  Format.printf "Portal: %d triples, %d supposedly-clean persons@.@."
    (Rdf.Graph.cardinal graph) (List.length valid);

  (* 1. Take a handful of clean nodes as examples and infer a shape. *)
  let examples = List.filteri (fun i _ -> i < 25) valid in
  let person = Shex.Label.of_string "Person" in
  let schema =
    match Shex.Infer.infer_schema graph [ (person, examples) ] with
    | Ok s -> s
    | Error msg -> failwith msg
  in
  Format.printf "Inferred from %d examples:@.@.%s@."
    (List.length examples)
    (Shexc.Shexc_printer.schema_to_string schema);

  (* 2. Validate the whole portal against the inferred schema. *)
  let session = Shex.Validate.session schema graph in
  let conforming, rejected =
    List.partition
      (fun n -> Shex.Validate.check_bool session n person)
      (valid @ invalid)
  in
  Format.printf
    "Inferred schema: %d of %d persons conform, %d rejected@."
    (List.length conforming)
    (List.length valid + List.length invalid)
    (List.length rejected);

  (* The generator's invalid persons must all be rejected; clean ones
     may occasionally be rejected when the examples under-sample a rare
     cardinality (e.g. nobody in the sample had 2 names). *)
  let false_accepts =
    List.filter (fun n -> List.exists (Rdf.Term.equal n) invalid) conforming
  in
  let missed_valid =
    List.filter (fun n -> List.exists (Rdf.Term.equal n) valid) rejected
  in
  Format.printf
    "Ground truth: %d invalid persons accepted (must be 0), %d clean \
     persons rejected by the tighter inferred bounds@.@."
    (List.length false_accepts)
    (List.length missed_valid);

  (* 3. Relax the cardinality upper bounds and revalidate. *)
  let relaxed =
    match
      Shex.Infer.infer_schema
        ~options:{ Shex.Infer.max_value_set = 0; close_cardinalities = false }
        graph
        [ (person, examples) ]
    with
    | Ok s -> s
    | Error msg -> failwith msg
  in
  let session = Shex.Validate.session relaxed graph in
  let conforming =
    List.filter
      (fun n -> Shex.Validate.check_bool session n person)
      (valid @ invalid)
  in
  Format.printf
    "Relaxed upper bounds ({m,} instead of {m,n}): %d conform@."
    (List.length conforming);

  (* 4. Export the inferred schema to ShExJ for the next tool over. *)
  Format.printf "@.ShExJ export is %d bytes of JSON.@."
    (String.length (Shexc.Shexj.export_string schema))

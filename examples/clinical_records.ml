(* Validating clinical observation records.

   The paper's author list includes the Mayo Clinic, and clinical data
   exchange is the canonical industrial use case for RDF validation
   (§1: "the industry need to describe and validate conformance of RDF
   instance data").  This example models a simplified observation
   vocabulary: coded observations with value sets, units, cardinality
   bounds, date datatypes and a reference to a Patient shape.

   Run with: dune exec examples/clinical_records.exe *)

let schema_src =
  {|PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
PREFIX obs: <http://example.org/clinical/>

<Observation> {
  obs:code [ obs:heart-rate obs:blood-pressure obs:temperature ]
  , obs:status [ "final" "preliminary" "amended" ]
  , obs:effectiveDate xsd:date
  , obs:value xsd:decimal
  , obs:unit [ "bpm" "mmHg" "celsius" ]
  , obs:subject @<Patient>
  , obs:note xsd:string{0,2}
}

<Patient> {
  obs:mrn xsd:string
  , obs:birthDate xsd:date?
}
|}

let data_src =
  {|@prefix obs: <http://example.org/clinical/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix : <http://example.org/data/> .

:obs1 obs:code obs:heart-rate ;
      obs:status "final" ;
      obs:effectiveDate "2015-03-27"^^xsd:date ;
      obs:value 72.0 ;
      obs:unit "bpm" ;
      obs:subject :patient1 .

:obs2 obs:code obs:temperature ;
      obs:status "preliminary" ;
      obs:effectiveDate "2015-03-27"^^xsd:date ;
      obs:value 38.2 ;
      obs:unit "celsius" ;
      obs:subject :patient1 ;
      obs:note "measured orally" ;
      obs:note "patient reports chills" .

# Invalid: unknown status code and three notes (max is 2).
:obs3 obs:code obs:blood-pressure ;
      obs:status "draft" ;
      obs:effectiveDate "2015-03-27"^^xsd:date ;
      obs:value 120.0 ;
      obs:unit "mmHg" ;
      obs:subject :patient1 ;
      obs:note "a" ; obs:note "b" ; obs:note "c" .

# Invalid: subject is not a conforming Patient (no MRN).
:obs4 obs:code obs:heart-rate ;
      obs:status "final" ;
      obs:effectiveDate "2015-03-28"^^xsd:date ;
      obs:value 80.0 ;
      obs:unit "bpm" ;
      obs:subject :patient2 .

:patient1 obs:mrn "MRN-001" ;
          obs:birthDate "1980-01-01"^^xsd:date .

:patient2 obs:birthDate "1990-06-06"^^xsd:date .
|}

let () =
  let schema = Shexc.Shexc_parser.parse_schema_exn schema_src in
  let graph = Turtle.Parse.parse_graph_exn data_src in
  Format.printf "Clinical schema:@.%s@."
    (Shexc.Shexc_printer.schema_to_string schema);

  let observation = Shex.Label.of_string "Observation" in
  let patient = Shex.Label.of_string "Patient" in
  let session = Shex.Validate.session schema graph in

  let report label name =
    let node = Rdf.Term.iri ("http://example.org/data/" ^ name) in
    let outcome = Shex.Validate.check session node label in
    Format.printf ":%-9s %-13s %s@." name
      (Printf.sprintf "<%s>" (Shex.Label.to_string label))
      (if outcome.Shex.Validate.ok then "conforms"
       else
         "FAILS — "
         ^ Option.value (Shex.Validate.reason outcome) ~default:"(no reason)")
  in
  Format.printf "Validation report:@.";
  List.iter (report observation) [ "obs1"; "obs2"; "obs3"; "obs4" ];
  List.iter (report patient) [ "patient1"; "patient2" ];

  (* Count conforming observations across the graph. *)
  let typing = Shex.Validate.validate_graph session in
  let conforming =
    List.filter
      (fun n -> Shex.Typing.mem n observation typing)
      (Rdf.Graph.subjects graph)
  in
  Format.printf "@.%d of 4 observations conform.@." (List.length conforming);

  (* The SORBE view: the Observation shape is single-occurrence, so the
     counting matcher applies (§8 future work). *)
  match Shex.Sorbe.of_rse (Shex.Schema.find_exn schema observation) with
  | Some sorbe ->
      Format.printf "@.Observation is in the SORBE fragment:@.  %a@."
        Shex.Sorbe.pp sorbe
  | None -> Format.printf "@.Observation is not SORBE.@."

(* Quickstart: the paper's Examples 1 and 2, end to end.

   Run with: dune exec examples/quickstart.exe *)

let schema_src =
  {|PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>

<Person> {
  foaf:age xsd:integer
  , foaf:name xsd:string+
  , foaf:knows @<Person>*
}
|}

let data_src =
  {|@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix : <http://example.org/> .

:john foaf:age 23;
      foaf:name "John";
      foaf:knows :bob .

:bob foaf:age 34;
     foaf:name "Bob", "Robert" .

:mary foaf:age 50, 65 .
|}

let () =
  (* 1. Parse the ShExC schema (Example 1). *)
  let schema = Shexc.Shexc_parser.parse_schema_exn schema_src in
  Format.printf "Schema:@.%a@.@." Shex.Schema.pp schema;

  (* 2. Parse the Turtle data (Example 2). *)
  let graph = Turtle.Parse.parse_graph_exn data_src in
  Format.printf "Data (%d triples):@.%a@.@." (Rdf.Graph.cardinal graph)
    Rdf.Graph.pp graph;

  (* 3. Validate each node against <Person>. *)
  let person = Shex.Label.of_string "Person" in
  let session = Shex.Validate.session schema graph in
  let check name =
    let node = Rdf.Term.iri ("http://example.org/" ^ name) in
    let outcome = Shex.Validate.check session node person in
    Format.printf ":%-5s has shape <Person>?  %b@." name
      outcome.Shex.Validate.ok;
    match Shex.Validate.reason outcome with
    | Some reason -> Format.printf "        reason: %s@." reason
    | None -> ()
  in
  List.iter check [ "john"; "bob"; "mary" ];

  (* 4. Show the derivative trace for john (the §7 algorithm at work). *)
  let john = Rdf.Term.iri "http://example.org/john" in
  let shape = Shex.Schema.find_exn schema person in
  let trace =
    Shex.Deriv.matches_trace
      ~check_ref:(fun l o -> Shex.Validate.check_bool session o l)
      john graph shape
  in
  Format.printf "@.Derivative trace for :john:@.%a@." Shex.Deriv.pp_trace
    trace;

  (* 5. The full typing of the graph. *)
  let typing = Shex.Validate.validate_graph session in
  Format.printf "@.Typing of the whole graph:@.%a@." Shex.Typing.pp typing

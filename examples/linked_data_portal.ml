(* Validating a linked-data portal (§1, ref [16] of the paper): a
   synthetic FOAF social network with a recursive Person shape.

   Shows whole-graph typing, failure diagnosis, engine comparison on a
   small slice, and Turtle export of the invalid subgraph.

   Run with: dune exec examples/linked_data_portal.exe *)

let () =
  let profile =
    { Workload.Foaf_gen.n_persons = 400;
      invalid_fraction = 0.12;
      knows_degree = 3;
      seed = 2015 }
  in
  let { Workload.Foaf_gen.graph; valid; invalid } =
    Workload.Foaf_gen.generate profile
  in
  Format.printf "Portal: %d persons (%d supposedly valid), %d triples@.@."
    profile.Workload.Foaf_gen.n_persons (List.length valid)
    (Rdf.Graph.cardinal graph);

  let schema, person = Workload.Foaf_gen.person_schema () in
  Format.printf "Schema (Example 14):@.%a@.@." Shex.Schema.pp schema;

  (* Validate every node with the derivatives engine. *)
  let session = Shex.Validate.session schema graph in
  let t0 = Sys.time () in
  let typing = Shex.Validate.validate_graph session in
  let elapsed = Sys.time () -. t0 in
  let typed_persons =
    List.filter (fun n -> Shex.Typing.mem n person typing) (valid @ invalid)
  in
  Format.printf
    "Derivatives engine: %d of %d persons conform (%.1f ms total)@."
    (List.length typed_persons)
    (List.length valid + List.length invalid)
    (elapsed *. 1000.0);

  (* Cross-check the generator's ground truth. *)
  let false_negatives =
    List.filter (fun n -> not (Shex.Typing.mem n person typing)) valid
  in
  let false_positives =
    List.filter (fun n -> Shex.Typing.mem n person typing) invalid
  in
  Format.printf "Ground truth check: %d false negatives, %d false positives@.@."
    (List.length false_negatives)
    (List.length false_positives);

  (* Diagnose the first few invalid persons. *)
  Format.printf "Sample diagnoses:@.";
  List.iteri
    (fun i n ->
      if i < 3 then begin
        let outcome = Shex.Validate.check session n person in
        Format.printf "  %a: %s@." Rdf.Term.pp n
          (Option.value
             (Shex.Validate.reason outcome)
             ~default:"(no reason recorded)")
      end)
    invalid;

  (* Engine comparison on a small slice: backtracking is exponential in
     neighbourhood size, so keep both the population and the fan-out
     tiny. *)
  let small_profile =
    { profile with Workload.Foaf_gen.n_persons = 10; knows_degree = 1 }
  in
  let small = Workload.Foaf_gen.generate small_profile in
  let time engine =
    let session =
      Shex.Validate.session ~engine schema small.Workload.Foaf_gen.graph
    in
    let t0 = Sys.time () in
    let typing = Shex.Validate.validate_graph session in
    (Sys.time () -. t0, Shex.Typing.cardinal typing)
  in
  let t_deriv, n_deriv = time Shex.Validate.Derivatives in
  let t_back, n_back = time Shex.Validate.Backtracking in
  Format.printf
    "@.Engine comparison on %d persons: derivatives %.2f ms (%d typed), \
     backtracking %.2f ms (%d typed)@."
    small_profile.Workload.Foaf_gen.n_persons (t_deriv *. 1000.0) n_deriv
    (t_back *. 1000.0) n_back;

  (* Export the invalid persons' neighbourhoods as Turtle for triage. *)
  let invalid_subgraph =
    List.fold_left
      (fun acc n -> Rdf.Graph.union acc (Rdf.Graph.neighbourhood n graph))
      Rdf.Graph.empty invalid
  in
  let turtle = Turtle.Write.to_string invalid_subgraph in
  Format.printf "@.Invalid subgraph (Turtle, first 400 chars):@.%s@."
    (if String.length turtle > 400 then String.sub turtle 0 400 ^ "..."
     else turtle)

(* Shape Expressions versus SPARQL (§3 of the paper).

   Generates the SPARQL validation query for a non-recursive Person
   shape, shows how unwieldy it is next to the ShExC form, evaluates
   both, and checks they agree.  Also renders and runs the paper's
   Example 4 query.

   Run with: dune exec examples/sparql_comparison.exe *)

let foaf l = Rdf.Iri.of_string_exn ("http://xmlns.com/foaf/0.1/" ^ l)

(* Non-recursive variant of the Person shape: SPARQL cannot express
   the recursive foaf:knows @<Person> (§3), so the reference becomes a
   node-kind test. *)
let person_shape =
  Shex.Rse.and_all
    [ Shex.Rse.arc_v (Shex.Value_set.Pred (foaf "age"))
        Shex.Value_set.xsd_integer;
      Shex.Rse.plus
        (Shex.Rse.arc_v (Shex.Value_set.Pred (foaf "name"))
           Shex.Value_set.xsd_string);
      Shex.Rse.star
        (Shex.Rse.arc_v (Shex.Value_set.Pred (foaf "knows"))
           (Shex.Value_set.Obj_kind Shex.Value_set.Iri_kind)) ]

let () =
  Format.printf "The shape, in ShExC (3 lines):@.@.<Person> {@.  %s@.}@.@."
    (Shexc.Shexc_printer.expr_to_string person_shape);

  (match Sparql.Gen.of_shape person_shape with
  | Error msg -> failwith msg
  | Ok sel ->
      let text = Sparql.Pp.query_to_string (Sparql.Ast.Select_q sel) in
      Format.printf "The same constraint, compiled to SPARQL (%d lines):@.@.%s@.@."
        (List.length (String.split_on_char '\n' text))
        text);

  (* Evaluate both on a portal graph and compare. *)
  let profile =
    { Workload.Foaf_gen.n_persons = 150;
      invalid_fraction = 0.15;
      knows_degree = 2;
      seed = 99 }
  in
  let { Workload.Foaf_gen.graph; _ } = Workload.Foaf_gen.generate profile in
  Format.printf "Evaluating both on %d triples...@." (Rdf.Graph.cardinal graph);

  let t0 = Sys.time () in
  let deriv_nodes =
    List.filter
      (fun n -> Shex.Deriv.matches n graph person_shape)
      (Rdf.Graph.subjects graph)
  in
  let t_deriv = Sys.time () -. t0 in

  let t0 = Sys.time () in
  let sparql_nodes =
    match Sparql.Gen.matching_nodes graph person_shape with
    | Ok nodes -> nodes
    | Error msg -> failwith msg
  in
  let t_sparql = Sys.time () -. t0 in

  Format.printf
    "derivatives: %d conforming nodes in %.2f ms@.SPARQL:      %d \
     conforming nodes in %.2f ms@.agree: %b@.@."
    (List.length deriv_nodes) (t_deriv *. 1000.0)
    (List.length sparql_nodes) (t_sparql *. 1000.0)
    (List.for_all2 Rdf.Term.equal
       (List.sort Rdf.Term.compare deriv_nodes)
       sparql_nodes);

  (* Recursion is the dividing line (§3). *)
  let recursive =
    Shex.Rse.arc_ref (Shex.Value_set.Pred (foaf "knows"))
      (Shex.Label.of_string "Person")
  in
  (match Sparql.Gen.of_shape recursive with
  | Ok _ -> assert false
  | Error msg -> Format.printf "Recursive shape refused by the compiler:@.  %s@.@." msg);

  (* The paper's Example 4, verbatim style. *)
  let q = Sparql.Gen.example4_query () in
  Format.printf "The paper's Example 4 query:@.@.%s@.@."
    (Sparql.Pp.query_to_string q);
  let example2 =
    Turtle.Parse.parse_graph_exn
      {|@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix : <http://example.org/> .
:john foaf:age 23; foaf:name "John"; foaf:knows :bob .
:bob foaf:age 34; foaf:name "Bob", "Robert" .
:mary foaf:age 50, 65 .
|}
  in
  match Sparql.Eval.run example2 q with
  | `Boolean b ->
      Format.printf "Example 4 ASK over the Example 2 graph: %b@." b
  | `Solutions _ -> assert false

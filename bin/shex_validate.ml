(* shex-validate: command-line RDF validation with Shape Expressions.

   Usage:
     shex-validate --schema schema.shex --data data.ttl
     shex-validate --schema s.shex --data d.ttl --node http://e.org/john \
                   --shape Person --engine backtracking --trace
     shex-validate --schema s.shex --data d.ttl \
                   --shape-map '{FOCUS a ex:T}@<T>' --json
     shex-validate --schema s.shex --show-sparql Person
     shex-validate --schema s.shex --export-shexj
     shex-validate --oracle seeds=500,dir=findings *)

open Cmdliner

(* Link-time side effects: register the compiled-DFA backend with
   Shex.Validate (enabling --engine compiled / auto's DFA fallback)
   and the domain-parallel bulk runner (enabling --domains). *)
let () = Shex_automaton.Engine.install ()
let () = Shex_parallel.Bulk.install ()

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

type engine_choice = Deriv | Back | AutoE | CompiledE

let engine_of_choice = function
  | Deriv -> Shex.Validate.Derivatives
  | Back -> Shex.Validate.Backtracking
  | AutoE -> Shex.Validate.Auto
  | CompiledE -> Shex.Validate.Compiled

type metrics_mode = Mtext | Mjson

let load_schema path =
  let src = read_file path in
  let result =
    if Filename.check_suffix path ".json" then
      Shexc.Shexj.import_string src
    else Shexc.Shexc_parser.parse_schema src
  in
  match result with
  | Ok s -> s
  | Error msg -> Printf.eprintf "%s: %s\n" path msg; exit 2

let load_graph path =
  (* Streams: the lexer slides a window over the channel, so loading a
     multi-GB data file never materialises the source text. *)
  match Turtle.Parse.parse_file path with
  | Ok d -> d.Turtle.Parse.graph
  | Error msg -> Printf.eprintf "%s: %s\n" path msg; exit 2

let resolve_label schema name =
  (* Accept both the exact label and a suffix match, so users can say
     "Person" for <http://…/Person>. *)
  let exact = Shex.Label.of_string name in
  if Shex.Schema.mem schema exact then Some exact
  else
    List.find_opt
      (fun l ->
        let s = Shex.Label.to_string l in
        let n = String.length s and m = String.length name in
        n >= m && String.sub s (n - m) m = name)
      (Shex.Schema.labels schema)

let require_label schema name =
  match resolve_label schema name with
  | Some l -> l
  | None ->
      Printf.eprintf "unknown shape label %S (known: %s)\n" name
        (String.concat ", "
           (List.map Shex.Label.to_string (Shex.Schema.labels schema)));
      exit 2

let require_data = function
  | Some p -> p
  | None ->
      Printf.eprintf "--data is required for validation\n";
      exit 2

let print_trace session schema graph node label =
  let shape = Shex.Schema.find_exn schema label in
  let trace =
    Shex.Deriv.matches_trace
      ~check_ref:(fun l o -> Shex.Validate.check_bool session o l)
      node graph shape
  in
  Format.printf "%a@." Shex.Deriv.pp_trace trace

(* One code path for every engine: the unified telemetry snapshot
   (folding in the automaton cache when one is active) on stderr. *)
let print_engine_stats session =
  let snap = Shex.Validate.metrics session in
  if Telemetry.is_empty snap then
    prerr_endline "no stats: telemetry is disabled for this session"
  else Format.eprintf "%a%!" Telemetry.pp_text snap

let print_metrics session = function
  | None -> ()
  | Some Mtext ->
      Format.printf "%a%!" Telemetry.pp_text (Shex.Validate.metrics session)
  | Some Mjson ->
      print_endline
        (Json.to_string (Telemetry.to_json (Shex.Validate.metrics session)))

(* --explain: the paper-style derivative walk for each association,
   replayed against the session's settled verdicts. *)
let print_explain session associations =
  Format.printf "%a@." (fun ppf () ->
      Shex_explain.Walk.pp_report ppf ~session associations) ()

(* --profile: decode the attribution families out of the session
   snapshot.  The table goes to stderr (like --engine-stats) so it
   composes with every stdout format; under --json the same data is
   embedded as a "profile" member of the report document. *)
let session_profile session =
  if Shex.Validate.profiling session then
    Some (Shex.Profile.of_snapshot (Shex.Validate.metrics session))
  else None

let print_profile session =
  match session_profile session with
  | Some p -> Format.eprintf "%a%!" (Shex.Profile.pp ?top:None) p
  | None -> ()

(* --slow-ms: dump whatever the ring retained, to stderr, after the
   run — the one-shot form of the daemon's slowlog command. *)
let print_slowlog session =
  match Shex.Validate.slowlog session with
  | Some slog -> Format.eprintf "%a%!" Shex.Slowlog.pp slog
  | None -> ()

let emit_report session report ~json ~result_map ~quiet ~metrics =
  if json then begin
    (* --json --metrics json: one document, snapshot under "metrics". *)
    let embedded =
      match metrics with
      | Some Mjson -> Some (Shex.Validate.metrics session)
      | Some Mtext | None -> None
    in
    print_endline
      (Json.to_string
         (Shex.Report.to_json ?metrics:embedded
            ?profile:(session_profile session) report));
    match metrics with
    | Some Mtext -> print_metrics session metrics
    | Some Mjson | None -> ()
  end
  else begin
    if result_map then
      print_endline (Shex.Report.to_result_shape_map report)
    else if not quiet then Format.printf "%a@." Shex.Report.pp report;
    print_metrics session metrics
  end;
  if Shex.Report.all_conformant report then exit 0 else exit 1

let infer_cmd data_path label_name nodes_text =
  let graph = load_graph (require_data data_path) in
  let nodes =
    String.split_on_char ' ' nodes_text
    |> List.filter (fun s -> s <> "")
    |> List.map (fun text ->
           (* accept ex:-style names through the default namespaces *)
           match Rdf.Namespace.expand Rdf.Namespace.default text with
           | Ok iri -> Rdf.Term.Iri iri
           | Error _ -> Rdf.Term.iri text)
  in
  if nodes = [] then begin
    Printf.eprintf "--infer needs at least one example node\n";
    exit 2
  end;
  let label = Shex.Label.of_string label_name in
  match Shex.Infer.infer_schema graph [ (label, nodes) ] with
  | Ok schema ->
      print_string (Shexc.Shexc_printer.schema_to_string schema);
      exit 0
  | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2

(* ------------------------------------------------------------------ *)
(* Static analysis commands (lib/analysis)                             *)
(* ------------------------------------------------------------------ *)

(* --analyze: schema hygiene + per-shape emptiness.  Exit 0 when every
   rule is reachable and satisfiable, 1 when dead or unreachable rules
   were found, 3 when the only findings are Unknown (search capped). *)
let analyze_cmd schema =
  let h = Analysis.hygiene schema in
  Printf.printf "roots: %s\n"
    (String.concat ", " (List.map Shex.Label.to_string h.Analysis.roots));
  let unknowns = ref 0 in
  List.iter
    (fun l ->
      let verdict = Analysis.shape_satisfiable schema l in
      (match verdict with Analysis.Unknown _ -> incr unknowns | _ -> ());
      Printf.printf "%s: %s%s\n"
        (Shex.Label.to_string l)
        (Format.asprintf "%a" Analysis.pp_emptiness verdict)
        (if List.exists (Shex.Label.equal l) h.Analysis.unreachable then
           " [unreachable]"
         else ""))
    (Shex.Schema.labels schema);
  if h.Analysis.unsatisfiable <> [] then
    Printf.printf "dead rules: %s\n"
      (String.concat ", "
         (List.map Shex.Label.to_string h.Analysis.unsatisfiable));
  if h.Analysis.unreachable <> [] then
    Printf.printf "unreachable rules: %s\n"
      (String.concat ", "
         (List.map Shex.Label.to_string h.Analysis.unreachable));
  exit
    (if h.Analysis.unsatisfiable <> [] || h.Analysis.unreachable <> [] then 1
     else if !unknowns > 0 then 3
     else 0)

(* --check-compat "OLD NEW" (or OLD,NEW): the deploy gate.  Exit 0
   when every shared label is contained (v1-valid nodes stay valid),
   1 with a replayable Turtle counterexample otherwise, 3 when some
   verdict was inconclusive and none was refuted. *)
let check_compat_cmd spec =
  let parts =
    String.split_on_char ','
      (String.concat "," (String.split_on_char ' ' spec))
    |> List.filter (fun s -> s <> "")
  in
  let old_path, new_path =
    match parts with
    | [ a; b ] -> (a, b)
    | _ ->
        failwith
          "--check-compat expects two schema files: --check-compat \
           'OLD NEW' (or OLD,NEW)"
  in
  let s_old = load_schema old_path and s_new = load_schema new_path in
  let compat = Analysis.check_compat s_old s_new in
  let refuted = ref 0 and inconclusive = ref 0 in
  List.iter
    (fun (it : Analysis.compat_item) ->
      Printf.printf "%s: %s\n"
        (Shex.Label.to_string it.Analysis.label)
        (Format.asprintf "%a" Analysis.pp_containment it.Analysis.verdict);
      match it.Analysis.verdict with
      | Analysis.Refuted w ->
          incr refuted;
          Printf.printf
            "  counterexample (valid under %s, invalid under %s):\n" old_path
            new_path;
          Printf.printf "  focus: %s\n" (Rdf.Term.to_string w.Analysis.focus);
          String.split_on_char '\n' (Analysis.witness_turtle w)
          |> List.iter (fun line ->
                 if line <> "" then Printf.printf "    %s\n" line)
      | Analysis.Inconclusive _ -> incr inconclusive
      | Analysis.Contained -> ())
    compat.Analysis.items;
  List.iter
    (fun l ->
      Printf.printf "removed: %s (present only in %s)\n"
        (Shex.Label.to_string l) old_path)
    compat.Analysis.removed;
  List.iter
    (fun l ->
      Printf.printf "added: %s (present only in %s)\n"
        (Shex.Label.to_string l) new_path)
    compat.Analysis.added;
  exit (if !refuted > 0 then 1 else if !inconclusive > 0 then 3 else 0)

(* --optimize: print the optimised schema as ShExC. *)
let optimize_cmd schema =
  let opt, n = Analysis.optimize_stats schema in
  print_string (Shexc.Shexc_printer.schema_to_string opt);
  Printf.eprintf "optimizer: %d shape%s rewritten\n" n
    (if n = 1 then "" else "s");
  exit 0

(* --oracle seeds=N[,start=S][,mode=surface|extended|edits|containment|
   optimizer][,dir=DIR]: run a differential campaign and exit — 0 when
   every arm agreed on every seed, 1 when divergences were found
   (shrunk repro files land in DIR when given).  mode=edits replays
   seeded insert/delete scripts through an incremental session and
   diffs every verdict against a from-scratch run after each edit;
   mode=containment attacks the static-analysis containment verdicts;
   mode=optimizer pins optimised ≡ unoptimised validation reports.
   --oracle replay=FILE re-runs a repro document instead: 0 when every
   arm now agrees. *)
type oracle_mode =
  | Gen of Workload.Rand_gen.mode
  | Edits
  | Containment
  | Optimizer

let oracle_cmd spec =
  let seeds = ref None
  and start = ref 0
  and mode = ref (Gen Workload.Rand_gen.Surface)
  and dir = ref None
  and replay = ref None in
  let int_value key v =
    match int_of_string_opt v with
    | Some n when n >= 0 -> n
    | Some _ | None ->
        failwith
          (Printf.sprintf "--oracle: %s must be a non-negative integer \
                           (got %S)" key v)
  in
  List.iter
    (fun part ->
      match String.index_opt part '=' with
      | None ->
          failwith
            (Printf.sprintf
               "--oracle: expected key=value, got %S (known keys: seeds, \
                start, mode, dir, replay)"
               part)
      | Some i ->
          let k = String.sub part 0 i
          and v = String.sub part (i + 1) (String.length part - i - 1) in
          (match (k, v) with
          | "seeds", v -> seeds := Some (int_value "seeds" v)
          | "start", v -> start := int_value "start" v
          | "mode", "surface" -> mode := Gen Workload.Rand_gen.Surface
          | "mode", "extended" -> mode := Gen Workload.Rand_gen.Extended
          | "mode", "edits" -> mode := Edits
          | "mode", "containment" -> mode := Containment
          | "mode", "optimizer" -> mode := Optimizer
          | "mode", v ->
              failwith
                (Printf.sprintf
                   "--oracle: mode must be surface, extended, edits, \
                    containment or optimizer (got %S)" v)
          | "dir", v -> dir := Some v
          | "replay", v -> replay := Some v
          | k, _ ->
              failwith
                (Printf.sprintf
                   "--oracle: unknown key %S (known keys: seeds, start, \
                    mode, dir, replay)"
                   k)))
    (String.split_on_char ',' spec)
  |> ignore;
  (match !replay with
  | Some path -> (
      if !seeds <> None then
        failwith "--oracle: replay= cannot be combined with seeds=";
      match Oracle.replay_file path with
      | Ok () ->
          Printf.printf "oracle: %s replays clean (all arms agree)\n" path;
          exit 0
      | Error detail ->
          Printf.eprintf "oracle: %s still diverges: %s\n" path detail;
          exit 1)
  | None -> ());
  let count =
    match !seeds with
    | Some n -> n
    | None -> failwith "--oracle: a seeds=N entry is required"
  in
  Option.iter
    (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o755)
    !dir;
  match !mode with
  | Containment ->
      let s =
        Oracle.run_containment_campaign ~log:prerr_endline ~first_seed:!start
          ~count ()
      in
      Printf.printf
        "oracle: %d seeds checked (containment arm, seeds %d-%d): %d \
         contained fuzz-checked, %d counterexamples re-verified, %d \
         inconclusive, %d finding%s\n"
        count !start
        (!start + count - 1)
        s.Oracle.Analysis_arm.contained s.Oracle.Analysis_arm.refuted
        s.Oracle.Analysis_arm.inconclusive
        (List.length s.Oracle.Analysis_arm.findings)
        (if List.length s.Oracle.Analysis_arm.findings = 1 then "" else "s");
      List.iter
        (fun (f : Oracle.Analysis_arm.finding) ->
          Printf.printf "  seed %d: %s\n" f.seed f.detail)
        s.Oracle.Analysis_arm.findings;
      exit (if s.Oracle.Analysis_arm.findings = [] then 0 else 1)
  | Optimizer ->
      let s =
        Oracle.run_optimizer_campaign ~log:prerr_endline ~first_seed:!start
          ~count ()
      in
      Printf.printf
        "oracle: %d seeds checked (optimizer arm, seeds %d-%d): %d \
         rewritten, reports byte-compared, %d finding%s\n"
        count !start
        (!start + count - 1)
        s.Oracle.Analysis_arm.rewritten
        (List.length s.Oracle.Analysis_arm.findings)
        (if List.length s.Oracle.Analysis_arm.findings = 1 then "" else "s");
      List.iter
        (fun (f : Oracle.Analysis_arm.finding) ->
          Printf.printf "  seed %d: %s\n" f.seed f.detail)
        s.Oracle.Analysis_arm.findings;
      exit (if s.Oracle.Analysis_arm.findings = [] then 0 else 1)
  | Edits ->
      let summary =
        Oracle.run_edits_campaign ?dir:!dir ~log:prerr_endline
          ~first_seed:!start ~count ()
      in
      if summary.findings = [] then begin
        Printf.printf
          "oracle: %d edit scripts checked (seeds %d-%d): no divergences\n"
          count !start
          (!start + count - 1);
        exit 0
      end
      else begin
        Printf.printf "oracle: %d edit scripts checked: %d divergence%s\n"
          count
          (List.length summary.findings)
          (if List.length summary.findings = 1 then "" else "s");
        List.iter
          (fun (f : Oracle.Edits.finding) ->
            Printf.printf "  seed %d: %s%s\n" f.seed f.divergence.detail
              (match f.repro with Some p -> " [" ^ p ^ "]" | None -> ""))
          summary.findings;
        exit 1
      end
  | Gen gen_mode ->
      let summary =
        Oracle.run_campaign ~mode:gen_mode ?dir:!dir ~log:prerr_endline
          ~first_seed:!start ~count ()
      in
      let mode_text =
        match gen_mode with
        | Workload.Rand_gen.Surface -> "surface"
        | Workload.Rand_gen.Extended -> "extended"
      in
      if summary.findings = [] then begin
        Printf.printf "oracle: %d seeds checked (%s mode, seeds %d-%d): no \
                       divergences\n"
          count mode_text !start
          (!start + count - 1);
        exit 0
      end
      else begin
        Printf.printf "oracle: %d seeds checked (%s mode): %d divergence%s\n"
          count mode_text
          (List.length summary.findings)
          (if List.length summary.findings = 1 then "" else "s");
        List.iter
          (fun (f : Oracle.finding) ->
            Printf.printf "  seed %d: %s%s\n" f.seed f.divergence.detail
              (match f.repro with Some p -> " [" ^ p ^ "]" | None -> ""))
          summary.findings;
        exit 1
      end

let run_validate schema_path data_path node_opt shape_opt shape_map_opt
    engine domains interned profile slow_ms engine_stats metrics trace_json
    trace_chrome trace_folded explain trace show_sparql export_shexj json
    result_map quiet infer_nodes infer_label =
  (match infer_nodes with
  | Some nodes_text -> infer_cmd data_path infer_label nodes_text
  | None -> ());
  let schema_path =
    match schema_path with
    | Some p -> p
    | None ->
        Printf.eprintf "--schema is required (except with --infer)\n";
        exit 2
  in
  let schema = load_schema schema_path in
  (match show_sparql with
  | Some shape_name -> (
      let l = require_label schema shape_name in
      match Sparql.Gen.of_shape (Shex.Schema.find_exn schema l) with
      | Ok sel ->
          print_endline (Sparql.Pp.query_to_string (Sparql.Ast.Select_q sel));
          exit 0
      | Error msg ->
          Printf.eprintf "cannot translate %s: %s\n" shape_name msg;
          exit 2)
  | None -> ());
  if export_shexj then begin
    print_endline (Shexc.Shexj.export_string schema);
    exit 0
  end;
  let data_path = require_data data_path in
  let graph = load_graph data_path in
  let tele =
    (* --slow-ms rides along: the wall clock works without telemetry,
       but an enabled registry gives the slowlog entries their
       work-counter deltas. *)
    if
      engine_stats || metrics <> None || trace_json <> None
      || trace_chrome <> None || trace_folded <> None || profile
      || slow_ms <> None
    then Telemetry.create ()
    else Telemetry.disabled
  in
  (* Trace outputs are finalised exactly once, whichever way the
     command terminates: [at_exit] covers the report emitters' [exit]
     calls (which do not unwind, so Fun.protect alone would miss
     them), the [Fun.protect] around the dispatch below covers
     exception paths. *)
  let finishers : (unit -> unit) list ref = ref [] in
  let finished = ref false in
  let finish_traces () =
    if not !finished then begin
      finished := true;
      List.iter (fun f -> f ()) (List.rev !finishers)
    end
  in
  at_exit finish_traces;
  let sinks : (Telemetry.event -> unit) list ref = ref [] in
  (match trace_json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      finishers := (fun () -> close_out_noerr oc) :: !finishers;
      sinks :=
        (fun ev ->
          output_string oc
            (Json.to_string ~minify:true (Telemetry.event_to_json ev));
          output_char oc '\n')
        :: !sinks);
  (if trace_chrome <> None || trace_folded <> None then begin
     let recorder = Shex_explain.Trace.create () in
     sinks := Shex_explain.Trace.sink recorder :: !sinks;
     (* Exported traces carry the rendered residual expressions. *)
     Telemetry.set_residuals tele true;
     (* Atomic: a run interrupted between finisher start and finish
        must not leave a truncated trace where a previous good one
        stood. *)
     let write path render =
       finishers :=
         (fun () -> Json.write_file_atomic path (render ()))
         :: !finishers
     in
     Option.iter
       (fun path ->
         write path (fun () ->
             Json.to_string (Shex_explain.Export.chrome_json recorder)))
       trace_chrome;
     Option.iter
       (fun path ->
         write path (fun () -> Shex_explain.Export.folded recorder))
       trace_folded
   end);
  (match List.rev !sinks with
  | [] -> ()
  | [ f ] -> Telemetry.set_sink tele (Some f)
  | fs -> Telemetry.set_sink tele (Some (fun ev -> List.iter (fun f -> f ev) fs)));
  let session =
    Shex.Validate.session ~engine:(engine_of_choice engine) ~telemetry:tele
      ~domains ~interned ~profile ?slow_ms schema graph
  in
  let maybe_stats () =
    if engine_stats then print_engine_stats session;
    print_profile session;
    print_slowlog session
  in
  Fun.protect ~finally:finish_traces @@ fun () ->
  match (shape_map_opt, node_opt, shape_opt) with
  | Some shape_map_text, None, None -> (
      match Shex.Shape_map.parse shape_map_text with
      | Error msg ->
          Printf.eprintf "%s\n" msg;
          exit 2
      | Ok shape_map ->
          let report = Shex.Report.run_shape_map session shape_map graph in
          if explain then
            print_explain session (Shex.Shape_map.resolve shape_map graph);
          maybe_stats ();
          emit_report session report ~json ~result_map ~quiet ~metrics)
  | Some _, _, _ ->
      Printf.eprintf "--shape-map cannot be combined with --node/--shape\n";
      exit 2
  | None, Some node_iri, Some shape_name ->
      let label = require_label schema shape_name in
      let node = Rdf.Term.iri node_iri in
      let report = Shex.Report.run session [ (node, label) ] in
      if trace then print_trace session schema graph node label;
      if explain then print_explain session [ (node, label) ];
      maybe_stats ();
      emit_report session report ~json ~result_map ~quiet ~metrics
  | None, None, None ->
      (* Whole-graph mode: every node against every shape. *)
      let associations =
        List.concat_map
          (fun n ->
            List.map (fun l -> (n, l)) (Shex.Schema.labels schema))
          (Rdf.Graph.nodes graph)
      in
      let report = Shex.Report.run session associations in
      if explain then print_explain session associations;
      maybe_stats ();
      if json then begin
        let embedded =
          match metrics with
          | Some Mjson -> Some (Shex.Validate.metrics session)
          | Some Mtext | None -> None
        in
        print_endline
          (Json.to_string
             (Shex.Report.to_json ?metrics:embedded
                ?profile:(session_profile session) report));
        exit 0
      end;
      let typing = report.Shex.Report.typing in
      if Shex.Typing.is_empty typing then begin
        if not quiet then print_endline "no node conforms to any shape";
        print_metrics session metrics;
        exit 1
      end
      else begin
        if not quiet then Format.printf "%a@." Shex.Typing.pp typing;
        print_metrics session metrics;
        exit 0
      end
  | None, _, _ ->
      Printf.eprintf "--node and --shape must be given together\n";
      exit 2

(* Library errors (bad IRIs, out-of-fragment schemas, filesystem
   trouble) must surface as one-line diagnostics with exit code 2,
   not as raw backtraces through cmdliner's catch-all. *)
(* Offline journal analysis: no daemon involved, just the reader. *)
let journal_replay_cmd path ~json =
  match Obs.Replay.analyze path with
  | Error msg -> failwith msg
  | Ok report ->
      if json then print_endline (Json.to_string (Obs.Replay.to_json report))
      else Format.printf "%a" Obs.Replay.pp report;
      exit 0

(* A curl-free scrape: print the body, exit 0 on 2xx, 1 otherwise —
   so cram tests can probe /health, /ready, /metrics with the binary
   under test. *)
let obs_get_cmd url =
  match Obs.Http.get url with
  | Error msg -> failwith msg
  | Ok (status, body) ->
      print_string body;
      exit (if status >= 200 && status < 300 then 0 else 1)

let validate_cmd oracle analyze check_compat optimize serve obs_port
    obs_interval journal journal_max_kb
    journal_replay obs_get schema_path data_path node_opt shape_opt
    shape_map_opt engine domains interned profile slow_ms engine_stats metrics
    trace_json trace_chrome trace_folded explain trace show_sparql
    export_shexj json result_map quiet infer_nodes infer_label =
  try
    (match oracle with Some spec -> oracle_cmd spec | None -> ());
    (match check_compat with Some spec -> check_compat_cmd spec | None -> ());
    if analyze || optimize then begin
      let path =
        match schema_path with
        | Some p -> p
        | None ->
            Printf.eprintf "--schema is required with --analyze/--optimize\n";
            exit 2
      in
      let schema = load_schema path in
      if analyze then analyze_cmd schema else optimize_cmd schema
    end;
    (match obs_get with Some url -> obs_get_cmd url | None -> ());
    (match journal_replay with
    | Some path -> journal_replay_cmd path ~json
    | None -> ());
    if serve then
      Serve.run ?schema_path ?data_path
        ~engine:(engine_of_choice engine) ~domains ?slow_ms ?obs_port
        ~obs_interval ?journal_path:journal
        ?journal_max_bytes:(Option.map (fun kb -> kb * 1024) journal_max_kb)
        ()
    else
      run_validate schema_path data_path node_opt shape_opt shape_map_opt
        engine domains interned profile slow_ms engine_stats metrics
        trace_json trace_chrome trace_folded explain trace show_sparql
        export_shexj json result_map quiet infer_nodes infer_label
  with
  | Failure msg | Sys_error msg | Invalid_argument msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2

let schema_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "s"; "schema" ] ~docv:"FILE"
        ~doc:"Schema file: ShExC, or ShExJ when the extension is .json.")

let infer_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "infer" ] ~docv:"NODES"
        ~doc:
          "Infer a schema from the space-separated example nodes in the \
           data (e.g. $(b,'ex:john ex:bob')), print it as ShExC and exit.")

let infer_label_arg =
  Arg.(
    value
    & opt string "Inferred"
    & info [ "infer-label" ] ~docv:"LABEL"
        ~doc:"Shape label for --infer (default: Inferred).")

let data_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "d"; "data" ] ~docv:"FILE" ~doc:"Turtle data file.")

let node_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "n"; "node" ] ~docv:"IRI" ~doc:"Focus node to validate.")

let shape_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "shape" ] ~docv:"LABEL"
        ~doc:"Shape label to validate against (suffix match allowed).")

let shape_map_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "m"; "shape-map" ] ~docv:"MAP"
        ~doc:
          "Shape map, e.g. $(b,'<n>@<S>, {FOCUS a ex:T}@<T>').  Selects \
           the (node, shape) pairs to check.")

let engine_arg =
  let choices =
    [ ("derivatives", Deriv); ("backtracking", Back); ("auto", AutoE);
      ("compiled", CompiledE) ]
  in
  Arg.(
    value
    & opt (enum choices) Deriv
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Matching engine: $(b,derivatives) (the paper's algorithm, \
           default), $(b,backtracking) (the Fig. 1 baseline — \
           exponential, small inputs only), $(b,compiled) (hash-consed \
           lazy derivative automata — compile each shape once, validate \
           by table lookup) or $(b,auto) (counting matcher for \
           single-occurrence shapes, compiled automata otherwise).")

let domains_arg =
  Arg.(
    value
    & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Validate bulk checks (shape maps, whole-graph mode) across \
           $(docv) OCaml domains (default 1 = sequential; values below 1 \
           are treated as 1).  Verdicts, reports and merged telemetry \
           totals are identical to sequential mode; trace sinks \
           ($(b,--trace-json), $(b,--trace-chrome), $(b,--trace-folded)) \
           force the sequential path so event streams stay ordered.")

let interned_arg =
  Arg.(
    value & flag
    & info [ "interned" ]
        ~doc:
          "Validate against the int-interned columnar store: terms are \
           interned to dense ids and neighbourhoods come from \
           binary-searched sorted int columns instead of structural \
           index walks.  Verdicts, reports and explanations are \
           byte-identical to the default representation (the \
           differential oracle pins this); the win is load and lookup \
           speed on large graphs.")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Enable telemetry with per-shape cost attribution: every \
           (node, shape) evaluation charges its self cost — derivative \
           steps, backtracking branches, SORBE counter updates, \
           compiled-DFA transitions, fixpoint flips and wall time — to \
           its shape label (and wall time to its focus node).  After \
           validating, print the hottest-shapes / hottest-focus-nodes \
           tables and the attribution-coverage line on stderr; with \
           $(b,--json) the same data is embedded as a $(b,profile) \
           member of the report document.")

let slow_ms_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:
          "Capture slow validations: every check taking at least $(docv) \
           wall-clock milliseconds is retained — verdict, failure \
           explanation and per-check work-counter deltas — in a bounded \
           ring buffer, dumped on stderr after the run.  With \
           $(b,--serve), sets the daemon's initial slowlog threshold \
           (see the $(b,slowlog) command).")

let engine_stats_arg =
  Arg.(
    value & flag
    & info [ "engine-stats" ]
        ~doc:
          "After validating, print the unified telemetry snapshot for \
           whatever engine ran (derivative steps, backtracking branches, \
           SORBE counter updates, fixpoint iterations, and — with \
           $(b,--engine) $(b,compiled) or $(b,auto) — the automaton \
           cache counters) on stderr.")

let metrics_arg =
  let choices = [ ("text", Mtext); ("json", Mjson) ] in
  Arg.(
    value
    & opt (some (enum choices)) None
    & info [ "metrics" ] ~docv:"FORMAT"
        ~doc:
          "Enable telemetry and print the session metrics snapshot on \
           stdout after the report: $(b,text) (Prometheus-style \
           exposition) or $(b,json).  With $(b,--json), $(b,--metrics) \
           $(b,json) embeds the snapshot under a $(b,metrics) key of the \
           report document instead.")

let trace_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-json" ] ~docv:"FILE"
        ~doc:
          "Enable telemetry and stream machine-readable derivative \
           traces to $(docv): one JSON object per line, one line per \
           derivative step taken by the matching engine (the structured \
           form of $(b,--trace)).")

let trace_chrome_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-chrome" ] ~docv:"FILE"
        ~doc:
          "Enable telemetry and write the full validation run as a \
           Chrome trace-event JSON document to $(docv) — one span per \
           (node, shape) check, one instant per derivative step — \
           loadable in Perfetto or chrome://tracing.")

let trace_folded_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-folded" ] ~docv:"FILE"
        ~doc:
          "Enable telemetry and write folded flamegraph stacks \
           ($(b,frame;frame count) lines, self-time in microseconds) to \
           $(docv), ready for $(b,flamegraph.pl) or speedscope.")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "After validating, pretty-print the derivative walk behind \
           every verdict in the style of the paper's Examples 8\xe2\x80\x9312, \
           with the structured blame set on each failure.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:"Print the derivative trace (only with --node/--shape).")

let show_sparql_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "show-sparql" ] ~docv:"LABEL"
        ~doc:
          "Print the SPARQL query compiled from the given shape (\xc2\xa73 \
           of the paper) and exit.")

let export_shexj_arg =
  Arg.(
    value & flag
    & info [ "export-shexj" ]
        ~doc:"Print the schema as ShExJ (JSON) and exit.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the validation report as JSON.")

let result_map_arg =
  Arg.(
    value & flag
    & info [ "result-map" ]
        ~doc:"Emit the report as a result shape map (node@<S> / node@!<S>).")

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only set the exit code.")

let oracle_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "oracle" ] ~docv:"SPEC"
        ~doc:
          "Run the cross-engine differential oracle instead of \
           validating: generate seeded random workloads, run every \
           applicable engine (derivatives, backtracking, SORBE, \
           compiled automata, SPARQL, 2- and 4-domain bulk), and \
           delta-shrink any disagreement.  $(docv) is \
           $(b,seeds=N)[$(b,,start=S)][$(b,,mode=surface|extended|edits)]\
           [$(b,,dir=DIR)]; shrunk repro files are written to \
           $(b,DIR).  $(b,mode=edits) replays seeded insert/delete \
           scripts through an incremental session and diffs every \
           verdict against a from-scratch run after each edit.  Exits \
           0 when every arm agreed on every seed, 1 otherwise.  \
           $(b,replay=FILE) re-runs a previously written repro \
           document instead.")

let analyze_arg =
  Arg.(
    value & flag
    & info [ "analyze" ]
        ~doc:
          "Static analysis of $(b,--schema): satisfiability of every \
           shape (nullability-guided derivative-space search, with a \
           verified concrete witness for each satisfiable shape) plus \
           dead-rule and unreachable-shape detection from the focus \
           roots.  Exits 0 when every rule is live and reachable, 1 \
           when dead or unreachable rules were found, 3 when a search \
           was inconclusive.")

let check_compat_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "check-compat" ] ~docv:"'OLD NEW'"
        ~doc:
          "Deploy gate: check that every node valid under schema \
           $(b,OLD) stays valid under schema $(b,NEW) (containment by \
           product-derivative search, label by label).  Counterexamples \
           are printed as replayable Turtle neighbourhoods.  Exits 0 \
           when every shared label is contained, 1 on a refutation, 3 \
           when some verdict was inconclusive.  The two paths are \
           separated by a space or a comma.")

let optimize_arg =
  Arg.(
    value & flag
    & info [ "optimize" ]
        ~doc:
          "Print $(b,--schema) rewritten by the pre-validation \
           optimizer as ShExC: value-set normalisation and merging, \
           provably-empty disjunct pruning, conjunct hoisting out of \
           alternatives.  The differential oracle's optimizer arm pins \
           the rewrite to identical validation verdicts.")

let serve_arg =
  Arg.(
    value & flag
    & info [ "serve" ]
        ~doc:
          "Run as a long-lived validation daemon: read one JSON command \
           per line from stdin ($(b,load), $(b,insert), $(b,delete), \
           $(b,query), $(b,metrics), $(b,shutdown)), answer one JSON \
           line per command on stdout.  Edits are applied through an \
           incremental revalidation session: only the dependency \
           frontier of each delta is re-checked, and responses list the \
           verdicts the delta flipped.  Malformed commands answer a \
           plain $(b,error:) line and the daemon keeps serving.  \
           --schema/--data preload a session; otherwise start with a \
           $(b,load) command.")

let obs_port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "obs-port" ] ~docv:"PORT"
        ~doc:
          "With $(b,--serve): answer HTTP GETs on 127.0.0.1:$(docv) — \
           $(b,/metrics) (Prometheus exposition), $(b,/health), \
           $(b,/ready) (503 until a schema is loaded), $(b,/slowlog) \
           and $(b,/stats) (JSON).  $(docv) 0 lets the kernel pick; \
           the daemon prints the bound address on stderr.  Scrapes are \
           answered from the daemon's own select loop between \
           commands — no extra threads or domains.")

let obs_interval_arg =
  Arg.(
    value & opt float 10.
    & info [ "obs-interval" ] ~docv:"SECONDS"
        ~doc:
          "Sampling period of the sliding SLI window and the journal \
           tick (default 10).  0 samples after every loop wake instead \
           of on a timer — deterministic for tests, idle-quiet \
           otherwise.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "With $(b,--serve): append one JSON record per observability \
           tick (cumulative telemetry snapshot), plus lifecycle events \
           and slow-check spills, to $(docv).  Rotates to $(docv).1 at \
           $(b,--journal-max-kb), fsyncing the retired generation.  \
           Replay offline with $(b,--journal-replay).")

let journal_max_kb_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "journal-max-kb" ] ~docv:"KB"
        ~doc:"Journal rotation threshold in KiB (default 1024).")

let journal_replay_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal-replay" ] ~docv:"FILE"
        ~doc:
          "Analyse a $(b,--journal) file offline (reading $(docv).1 \
           first when a rotation left one): reconstruct per-window \
           request/error rates and latency quantiles from consecutive \
           ticks, list lifecycle events, and report how the daemon \
           shut down.  $(b,--json) emits the report as JSON.")

let obs_get_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "obs-get" ] ~docv:"URL"
        ~doc:
          "Fetch $(docv) (plain HTTP GET) and print the response body \
           — a minimal client for the $(b,--obs-port) endpoints where \
           curl is unavailable.  Exits 0 on a 2xx status, 1 otherwise.")

let cmd =
  let doc = "validate RDF graphs against Shape Expression schemas" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Validates Turtle data against a ShExC (or ShExJ) schema using \
         regular expression derivatives (Labra Gayo et al., EDBT/ICDT \
         2015 workshops).  Without --node or --shape-map, types every \
         node of the graph against every shape and prints the resulting \
         typing.";
      `S Manpage.s_exit_status;
      `P "0 on conformance, 1 on non-conformance, 2 on usage errors." ]
  in
  Cmd.v
    (Cmd.info "shex-validate" ~doc ~man)
    Term.(
      const validate_cmd $ oracle_arg $ analyze_arg $ check_compat_arg
      $ optimize_arg $ serve_arg $ obs_port_arg
      $ obs_interval_arg $ journal_arg $ journal_max_kb_arg
      $ journal_replay_arg $ obs_get_arg $ schema_arg $ data_arg
      $ node_arg
      $ shape_arg $ shape_map_arg $ engine_arg $ domains_arg
      $ interned_arg $ profile_arg $ slow_ms_arg
      $ engine_stats_arg
      $ metrics_arg
      $ trace_json_arg $ trace_chrome_arg $ trace_folded_arg $ explain_arg
      $ trace_arg $ show_sparql_arg $ export_shexj_arg $ json_arg
      $ result_map_arg $ quiet_arg $ infer_arg $ infer_label_arg)

let () = exit (Cmd.eval cmd)

(* Long-running validation daemon (shex-validate --serve).

   One JSON command per stdin line, one minified JSON response per
   stdout line:

     {"cmd":"load","schema":FILE[,"data":FILE]}   (re)load schema+data
     {"cmd":"insert","triples":TURTLE}            apply triple inserts
     {"cmd":"delete","triples":TURTLE}            apply triple deletes
     {"cmd":"query","node":IRI,"shape":LABEL}     one verdict
     {"cmd":"metrics"}                            telemetry snapshot + uptime
     {"cmd":"slowlog"[,"threshold_ms":N][,"clear":true]}
                                                  slow-validation ring buffer
     {"cmd":"shutdown"}                           exit 0

   Edits go through an incremental session (Shex_incremental.Session):
   only the dependency frontier of each delta is re-solved, and
   insert/delete responses list the verdicts the delta flipped.  A
   malformed command answers a plain "error: ..." line and the loop
   keeps serving; EOF exits 0 like shutdown. *)

exception Bad of string
exception Quit of Json.t

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

type state = {
  engine : Shex.Validate.engine;
  domains : int;
  tele : Telemetry.t;
  started : float;  (* Unix.gettimeofday at daemon startup *)
  requests : Telemetry.Counter.t;
  errors : Telemetry.Counter.t;
  request_span : Telemetry.Span.t;
  mutable slow_ms : float option;
  mutable session : Shex_incremental.Session.t option;
}

let read_file path =
  try In_channel.with_open_bin path In_channel.input_all
  with Sys_error msg -> bad "%s" msg

let load_schema path =
  let src = read_file path in
  let result =
    if Filename.check_suffix path ".json" then Shexc.Shexj.import_string src
    else Shexc.Shexc_parser.parse_schema src
  in
  match result with Ok s -> s | Error msg -> bad "%s: %s" path msg

let load_graph path =
  match Turtle.Parse.parse_graph (read_file path) with
  | Ok g -> g
  | Error msg -> bad "%s: %s" path msg

(* Same convention as --shape: exact label or suffix match. *)
let resolve_label schema name =
  let exact = Shex.Label.of_string name in
  if Shex.Schema.mem schema exact then exact
  else
    let labels = Shex.Schema.labels schema in
    match
      List.find_opt
        (fun l ->
          let s = Shex.Label.to_string l in
          let n = String.length s and m = String.length name in
          n >= m && String.sub s (n - m) m = name)
        labels
    with
    | Some l -> l
    | None ->
        bad "unknown shape label %S (known: %s)" name
          (String.concat ", " (List.map Shex.Label.to_string labels))

let require_session st =
  match st.session with
  | Some s -> s
  | None -> bad "no schema loaded (send {\"cmd\":\"load\",...} first)"

let make_session st schema graph =
  let session =
    Shex_incremental.Session.create ~engine:st.engine ~telemetry:st.tele
      ~domains:st.domains schema graph
  in
  (* The slow-validation threshold survives reloads: a fresh inner
     Validate session starts without a slowlog, so re-arm it. *)
  Shex.Validate.set_slow_ms
    (Shex_incremental.Session.validation session)
    st.slow_ms;
  st.session <- Some session

let require_string cmd key ~what =
  match Json.find_string key cmd with
  | Some v -> v
  | None -> bad "missing %S member (%s)" key what

let parse_triples text =
  match Turtle.Parse.parse_graph text with
  | Ok g -> Rdf.Graph.to_list g
  | Error msg -> bad "triples: %s" msg

let stats_json (stats : Shex_incremental.Session.stats) =
  Json.Object
    [ ("ok", Json.Bool true);
      ("applied", Json.int stats.applied);
      ("frontier", Json.int stats.frontier);
      ("resolved", Json.int stats.resolved);
      ( "changed",
        Json.Array
          (List.map
             (fun (n, l, conformant) ->
               Json.Object
                 [ ("node", Json.String (Rdf.Term.to_string n));
                   ("shape", Json.String (Shex.Label.to_string l));
                   ("conformant", Json.Bool conformant) ])
             stats.changed) ) ]

let handle st cmd =
  match Json.find_string "cmd" cmd with
  | None -> bad "missing \"cmd\" member"
  | Some "load" ->
      let schema = load_schema (require_string cmd "schema" ~what:"file path") in
      let graph =
        match Json.find_string "data" cmd with
        | None -> Rdf.Graph.empty
        | Some path -> load_graph path
      in
      make_session st schema graph;
      Json.Object
        [ ("ok", Json.Bool true);
          ("shapes", Json.int (List.length (Shex.Schema.labels schema)));
          ("triples", Json.int (Rdf.Graph.cardinal graph)) ]
  | Some (("insert" | "delete") as op) ->
      let session = require_session st in
      let triples =
        parse_triples (require_string cmd "triples" ~what:"Turtle text")
      in
      let delta =
        if op = "insert" then Shex_incremental.Session.insert triples
        else Shex_incremental.Session.delete triples
      in
      stats_json (Shex_incremental.Session.apply session delta)
  | Some "query" ->
      let session = require_session st in
      let node = Rdf.Term.iri (require_string cmd "node" ~what:"IRI") in
      let shape =
        resolve_label
          (Shex_incremental.Session.schema session)
          (require_string cmd "shape" ~what:"shape label")
      in
      Json.Object
        [ ("ok", Json.Bool true);
          ("node", Json.String (Rdf.Term.to_string node));
          ("shape", Json.String (Shex.Label.to_string shape));
          ( "conformant",
            Json.Bool (Shex_incremental.Session.check_bool session node shape)
          ) ]
  | Some "metrics" ->
      (match st.session with
      | Some session ->
          Shex.Validate.sample_resources
            (Shex_incremental.Session.validation session)
      | None -> ());
      let snap =
        match st.session with
        | Some session -> Shex_incremental.Session.metrics session
        | None -> Telemetry.snapshot st.tele
      in
      let gc = Gc.quick_stat () in
      Json.Object
        [ ("ok", Json.Bool true);
          ( "uptime",
            Json.Object
              [ ("seconds",
                 Json.Number (Unix.gettimeofday () -. st.started));
                ("requests", Json.int (Telemetry.Counter.value st.requests))
              ] );
          ( "resources",
            Json.Object
              [ ("heap_words", Json.int gc.Gc.heap_words);
                ("minor_collections", Json.int gc.Gc.minor_collections);
                ("major_collections", Json.int gc.Gc.major_collections) ] );
          ("metrics", Telemetry.to_json snap) ]
  | Some "slowlog" ->
      let session = require_session st in
      let vs = Shex_incremental.Session.validation session in
      (match Json.find "threshold_ms" cmd with
      | Some (Json.Number ms) ->
          st.slow_ms <- Some ms;
          Shex.Validate.set_slow_ms vs (Some ms)
      | Some _ -> bad "\"threshold_ms\" must be a number (milliseconds)"
      | None -> ());
      (match Shex.Validate.slowlog vs with
      | None -> bad "slow-validation capture is off (start with --slow-ms \
                     or send {\"cmd\":\"slowlog\",\"threshold_ms\":N})"
      | Some slog ->
          let dump = Shex.Slowlog.to_json slog in
          (match Json.find "clear" cmd with
          | Some (Json.Bool true) -> Shex.Slowlog.clear slog
          | _ -> ());
          Json.Object [ ("ok", Json.Bool true); ("slowlog", dump) ])
  | Some "shutdown" -> raise (Quit (Json.Object [ ("ok", Json.Bool true) ]))
  | Some other ->
      bad "unknown command %S (known: load, insert, delete, query, \
           metrics, slowlog, shutdown)"
        other

let answer_line json = Printf.printf "%s\n%!" (Json.to_string ~minify:true json)

let rec loop st =
  match In_channel.input_line stdin with
  | None -> exit 0
  | Some line when String.trim line = "" -> loop st
  | Some line ->
      Telemetry.Counter.incr st.requests;
      (match
         Telemetry.Span.time st.request_span @@ fun () ->
         match Json.of_string line with
         | Error msg -> Error ("parse: " ^ msg)
         | Ok cmd -> (
             match handle st cmd with
             | json -> Ok json
             | exception Bad msg -> Error msg
             | exception (Sys_error msg | Failure msg | Invalid_argument msg)
               ->
                 Error msg)
       with
      | Ok json -> answer_line json
      | Error msg ->
          Telemetry.Counter.incr st.errors;
          Printf.printf "error: %s\n%!" msg
      | exception Quit json ->
          answer_line json;
          exit 0);
      loop st

let run ?schema_path ?data_path ?slow_ms ~engine ~domains () =
  let tele = Telemetry.create () in
  let st =
    { engine; domains; tele; started = Unix.gettimeofday ();
      requests = Telemetry.counter tele "serve_requests";
      errors = Telemetry.counter tele "serve_errors";
      request_span = Telemetry.span tele "serve_request";
      slow_ms; session = None }
  in
  (* Startup --schema/--data failures are fatal (exit 2 through the
     CLI's usual error path), unlike in-protocol load errors. *)
  (try
     match schema_path with
     | None -> ()
     | Some path ->
         let schema = load_schema path in
         let graph =
           match data_path with
           | None -> Rdf.Graph.empty
           | Some data -> load_graph data
         in
         make_session st schema graph
   with Bad msg -> failwith msg);
  loop st

(* Long-running validation daemon (shex-validate --serve).

   One JSON command per stdin line, one minified JSON response per
   stdout line:

     {"cmd":"load","schema":FILE[,"data":FILE]}   (re)load schema+data
     {"cmd":"insert","triples":TURTLE}            apply triple inserts
     {"cmd":"delete","triples":TURTLE}            apply triple deletes
     {"cmd":"query","node":IRI,"shape":LABEL}     one verdict
     {"cmd":"metrics"}                            telemetry snapshot + uptime
     {"cmd":"analyze"}                            static analysis of the
                                                  loaded schema (emptiness,
                                                  dead/unreachable rules)
     {"cmd":"analyze","compat":FILE}              containment check of the
                                                  loaded schema against a
                                                  proposed replacement
     {"cmd":"slowlog"[,"threshold_ms":N][,"clear":true]}
                                                  slow-validation ring buffer
     {"cmd":"shutdown"}                           exit 0

   Every JSON response carries a trailing "request" member — the
   daemon's monotonic request id, which is also stamped onto slowlog
   entries captured while that request ran, so a slow check in the
   flight recorder joins back to the exact response the client saw.
   (Plain "error: ..." lines stay bare: they are the pre-JSON failure
   surface and scripts grep them verbatim.)

   Edits go through an incremental session (Shex_incremental.Session):
   only the dependency frontier of each delta is re-solved, and
   insert/delete responses list the verdicts the delta flipped.  A
   malformed command answers a plain "error: ..." line and the loop
   keeps serving; EOF exits 0 like shutdown.

   The observability plane (all optional, all off by default):

   - [--obs-port N] binds a loopback HTTP listener answering GET
     /metrics /health /ready /slowlog /stats — the Prometheus scrape
     surface.  The daemon stays single-domain: the listening socket
     joins stdin in one [Unix.select] loop, so scrapes are answered
     between commands, never concurrently with validation.
   - a sliding window of telemetry snapshots is sampled every
     [--obs-interval] seconds (0 = after every loop wake, which makes
     tests deterministic without busy-waiting), deriving rolling
     per-counter rates and windowed latency quantiles.
   - [--journal FILE] appends one JSONL record per tick (cumulative
     telemetry, so offline replay diffs consecutive ticks), plus
     lifecycle events and slowlog spills, rotating at
     [--journal-max-kb].

   SIGTERM/SIGINT shut down gracefully: final tick, shutdown record,
   journal fsync, socket close, exit 0.  SIGPIPE is ignored so a
   scraper hanging up mid-response cannot kill the daemon. *)

exception Bad of string
exception Quit of Json.t

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

type state = {
  engine : Shex.Validate.engine;
  domains : int;
  tele : Telemetry.t;
  started : float;  (* Telemetry.now at daemon startup *)
  requests : Telemetry.Counter.t;
  errors : Telemetry.Counter.t;
  request_span : Telemetry.Span.t;
  latency : Telemetry.Histogram.t;  (* per-request wall µs, log2 buckets *)
  mutable request_id : int;  (* monotonic; echoed in every response *)
  mutable slow_ms : float option;
  mutable session : Shex_incremental.Session.t option;
}

(* The observability plane.  The window always exists (summaries stay
   [None] until ticks happen, so the disabled path is unchanged);
   listener and journal only when asked for. *)
type obs = {
  http : Obs.Http.t option;
  journal : Obs.Journal.t option;
  window : Telemetry.Window.t;
  interval : float;  (* 0 = tick on every loop wake, no timer *)
  mutable next_tick : float;
  mutable spilled : int;  (* Slowlog.seen high-water mark journaled *)
}

(* Set from signal handlers; checked at the top of every loop turn.
   Handlers must only flip the flag — the shutdown work (fsync, close)
   runs in the loop, not in signal context. *)
let stop_reason : string option ref = ref None

(* Schemas are small; data graphs are not.  Schema files are still
   read whole (the ShExC/ShExJ parsers want a string), but graph
   loading streams through the Turtle lexer's sliding window so the
   daemon's peak memory during [load] is bounded by the graph, never
   graph + source text. *)
let read_file path =
  try In_channel.with_open_bin path In_channel.input_all
  with Sys_error msg -> bad "%s" msg

let load_schema path =
  let src = read_file path in
  let result =
    if Filename.check_suffix path ".json" then Shexc.Shexj.import_string src
    else Shexc.Shexc_parser.parse_schema src
  in
  match result with Ok s -> s | Error msg -> bad "%s: %s" path msg

let load_graph path =
  match Turtle.Parse.parse_file path with
  | Ok d -> d.Turtle.Parse.graph
  | Error msg -> bad "%s: %s" path msg

(* Same convention as --shape: exact label or suffix match. *)
let resolve_label schema name =
  let exact = Shex.Label.of_string name in
  if Shex.Schema.mem schema exact then exact
  else
    let labels = Shex.Schema.labels schema in
    match
      List.find_opt
        (fun l ->
          let s = Shex.Label.to_string l in
          let n = String.length s and m = String.length name in
          n >= m && String.sub s (n - m) m = name)
        labels
    with
    | Some l -> l
    | None ->
        bad "unknown shape label %S (known: %s)" name
          (String.concat ", " (List.map Shex.Label.to_string labels))

let require_session st =
  match st.session with
  | Some s -> s
  | None -> bad "no schema loaded (send {\"cmd\":\"load\",...} first)"

let make_session st schema graph =
  let session =
    Shex_incremental.Session.create ~engine:st.engine ~telemetry:st.tele
      ~domains:st.domains schema graph
  in
  (* The slow-validation threshold survives reloads: a fresh inner
     Validate session starts without a slowlog, so re-arm it. *)
  Shex.Validate.set_slow_ms
    (Shex_incremental.Session.validation session)
    st.slow_ms;
  st.session <- Some session

let slowlog_of st =
  match st.session with
  | None -> None
  | Some session ->
      Shex.Validate.slowlog (Shex_incremental.Session.validation session)

let require_string cmd key ~what =
  match Json.find_string key cmd with
  | Some v -> v
  | None -> bad "missing %S member (%s)" key what

let parse_triples text =
  match Turtle.Parse.parse_graph text with
  | Ok g -> Rdf.Graph.to_list g
  | Error msg -> bad "triples: %s" msg

let stats_json (stats : Shex_incremental.Session.stats) =
  Json.Object
    [ ("ok", Json.Bool true);
      ("applied", Json.int stats.applied);
      ("frontier", Json.int stats.frontier);
      ("resolved", Json.int stats.resolved);
      ( "changed",
        Json.Array
          (List.map
             (fun (n, l, conformant) ->
               Json.Object
                 [ ("node", Json.String (Rdf.Term.to_string n));
                   ("shape", Json.String (Shex.Label.to_string l));
                   ("conformant", Json.Bool conformant) ])
             stats.changed) ) ]

let handle st obs cmd =
  match Json.find_string "cmd" cmd with
  | None -> bad "missing \"cmd\" member"
  | Some "load" ->
      let schema = load_schema (require_string cmd "schema" ~what:"file path") in
      let graph =
        match Json.find_string "data" cmd with
        | None -> Rdf.Graph.empty
        | Some path -> load_graph path
      in
      make_session st schema graph;
      Json.Object
        [ ("ok", Json.Bool true);
          ("shapes", Json.int (List.length (Shex.Schema.labels schema)));
          ("triples", Json.int (Rdf.Graph.cardinal graph)) ]
  | Some (("insert" | "delete") as op) ->
      let session = require_session st in
      let triples =
        parse_triples (require_string cmd "triples" ~what:"Turtle text")
      in
      let delta =
        if op = "insert" then Shex_incremental.Session.insert triples
        else Shex_incremental.Session.delete triples
      in
      stats_json (Shex_incremental.Session.apply session delta)
  | Some "query" ->
      let session = require_session st in
      let node = Rdf.Term.iri (require_string cmd "node" ~what:"IRI") in
      let shape =
        resolve_label
          (Shex_incremental.Session.schema session)
          (require_string cmd "shape" ~what:"shape label")
      in
      Json.Object
        [ ("ok", Json.Bool true);
          ("node", Json.String (Rdf.Term.to_string node));
          ("shape", Json.String (Shex.Label.to_string shape));
          ( "conformant",
            Json.Bool (Shex_incremental.Session.check_bool session node shape)
          ) ]
  | Some "metrics" ->
      (match st.session with
      | Some session ->
          Shex.Validate.sample_resources
            (Shex_incremental.Session.validation session)
      | None -> ());
      let snap =
        match st.session with
        | Some session -> Shex_incremental.Session.metrics session
        | None -> Telemetry.snapshot st.tele
      in
      let gc = Gc.quick_stat () in
      Json.Object
        ([ ("ok", Json.Bool true);
           ( "uptime",
             Json.Object
               [ ("seconds", Json.Number (max 0. (Telemetry.now () -. st.started)));
                 ("requests", Json.int (Telemetry.Counter.value st.requests))
               ] );
           ( "resources",
             Json.Object
               [ ("heap_words", Json.int gc.Gc.heap_words);
                 ("minor_collections", Json.int gc.Gc.minor_collections);
                 ("major_collections", Json.int gc.Gc.major_collections) ] );
           ("metrics", Telemetry.to_json snap) ]
        @
        (* Windowed SLIs appear once the obs plane has sampled twice —
           never on a plain daemon, so goldens without --obs-* flags
           are unaffected. *)
        match Telemetry.Window.summary obs.window with
        | Some s -> [ ("window", Telemetry.Window.summary_to_json s) ]
        | None -> [])
  | Some "analyze" -> (
      let session = require_session st in
      let schema = Shex_incremental.Session.schema session in
      match Json.find_string "compat" cmd with
      | Some path ->
          (* Containment of the *loaded* schema in a proposed
             replacement: "is this schema upgrade safe for the data
             already conforming here?" *)
          let proposed = load_schema path in
          let report = Analysis.check_compat ~tele:st.tele schema proposed in
          let item_json (it : Analysis.compat_item) =
            let verdict, detail =
              match it.Analysis.verdict with
              | Analysis.Contained -> ("contained", [])
              | Analysis.Refuted w ->
                  ( "refuted",
                    [ ("focus", Json.String (Rdf.Term.to_string w.Analysis.focus));
                      ( "counterexample_triples",
                        Json.int (Rdf.Graph.cardinal w.Analysis.graph) ) ] )
              | Analysis.Inconclusive m ->
                  ("inconclusive", [ ("detail", Json.String m) ])
            in
            Json.Object
              (( "shape",
                 Json.String (Shex.Label.to_string it.Analysis.label) )
              :: ("verdict", Json.String verdict)
              :: detail)
          in
          let labels ls =
            Json.Array
              (List.map (fun l -> Json.String (Shex.Label.to_string l)) ls)
          in
          Json.Object
            [ ("ok", Json.Bool true);
              ("shapes", Json.Array (List.map item_json report.Analysis.items));
              ("removed", labels report.Analysis.removed);
              ("added", labels report.Analysis.added) ]
      | None ->
          let hyg = Analysis.hygiene schema in
          let mem l ls = List.exists (Shex.Label.equal l) ls in
          let shape_json l =
            let satisfiable =
              match Analysis.shape_satisfiable ~tele:st.tele schema l with
              | Analysis.Satisfiable _ -> Json.Bool true
              | Analysis.Empty -> Json.Bool false
              | Analysis.Unknown m -> Json.String ("unknown: " ^ m)
            in
            Json.Object
              [ ("shape", Json.String (Shex.Label.to_string l));
                ("satisfiable", satisfiable);
                ("unreachable", Json.Bool (mem l hyg.Analysis.unreachable)) ]
          in
          let labels ls =
            Json.Array
              (List.map (fun l -> Json.String (Shex.Label.to_string l)) ls)
          in
          Json.Object
            [ ("ok", Json.Bool true);
              ( "shapes",
                Json.Array (List.map shape_json (Shex.Schema.labels schema)) );
              ("dead", labels hyg.Analysis.unsatisfiable);
              ("unreachable", labels hyg.Analysis.unreachable);
              ("roots", labels hyg.Analysis.roots) ])
  | Some "slowlog" ->
      let session = require_session st in
      let vs = Shex_incremental.Session.validation session in
      (match Json.find "threshold_ms" cmd with
      | Some (Json.Number ms) ->
          st.slow_ms <- Some ms;
          Shex.Validate.set_slow_ms vs (Some ms)
      | Some _ -> bad "\"threshold_ms\" must be a number (milliseconds)"
      | None -> ());
      (match Shex.Validate.slowlog vs with
      | None -> bad "slow-validation capture is off (start with --slow-ms \
                     or send {\"cmd\":\"slowlog\",\"threshold_ms\":N})"
      | Some slog ->
          let dump = Shex.Slowlog.to_json slog in
          (match Json.find "clear" cmd with
          | Some (Json.Bool true) -> Shex.Slowlog.clear slog
          | _ -> ());
          Json.Object [ ("ok", Json.Bool true); ("slowlog", dump) ])
  | Some "shutdown" -> raise (Quit (Json.Object [ ("ok", Json.Bool true) ]))
  | Some other ->
      bad "unknown command %S (known: load, insert, delete, query, \
           metrics, analyze, slowlog, shutdown)"
        other

let answer_line json = Printf.printf "%s\n%!" (Json.to_string ~minify:true json)

let with_request_id json rid =
  match json with
  | Json.Object kvs -> Json.Object (kvs @ [ ("request", Json.int rid) ])
  | other -> other

(* {2 The flight recorder} *)

let journal_record obs j =
  match obs.journal with None -> () | Some jn -> Obs.Journal.record jn j

let journal_event obs kind extra =
  journal_record obs
    (Json.Object
       (("kind", Json.String kind)
       :: ("ts", Json.Number (Telemetry.now ()))
       :: extra))

(* Spill slowlog entries recorded since the last spill.  [seen] only
   grows, so the high-water mark needs no ring bookkeeping; entries
   the ring already evicted between ticks are simply lost (the ring
   bounds live memory, the journal bounds disk — both by design). *)
let spill_slowlog st obs =
  if obs.journal <> None then
    match slowlog_of st with
    | None -> ()
    | Some slog ->
        let seen = Shex.Slowlog.seen slog in
        if seen > obs.spilled then begin
          let entries = Shex.Slowlog.entries slog in
          let fresh = min (seen - obs.spilled) (List.length entries) in
          let skip = List.length entries - fresh in
          List.iteri
            (fun i e ->
              if i >= skip then
                match Shex.Slowlog.entry_to_json e with
                | Json.Object kvs ->
                    journal_record obs
                      (Json.Object (("kind", Json.String "slow") :: kvs))
                | _ -> ())
            entries;
          obs.spilled <- seen
        end

(* One observability tick: sample the registry into the sliding
   window and append the cumulative snapshot to the journal.  Records
   are cumulative (not deltas) so replay survives rotation and daemon
   restarts into the same journal. *)
let tick st obs ~now =
  (match st.session with
  | Some session ->
      Shex.Validate.sample_resources
        (Shex_incremental.Session.validation session)
  | None -> ());
  let snap = Telemetry.snapshot st.tele in
  Telemetry.Window.observe obs.window ~now snap;
  journal_record obs
    (Json.Object
       [ ("kind", Json.String "tick");
         ("ts", Json.Number now);
         ("telemetry", Telemetry.to_json snap) ]);
  spill_slowlog st obs

let shutdown st obs reason =
  if obs.journal <> None || obs.http <> None then
    tick st obs ~now:(Telemetry.now ());
  journal_event obs "shutdown" [ ("reason", Json.String reason) ];
  (match obs.journal with None -> () | Some j -> Obs.Journal.close j);
  (match obs.http with None -> () | Some h -> Obs.Http.close h);
  exit 0

(* {2 The scrape surface} *)

let metrics_exposition st obs =
  (match st.session with
  | Some session ->
      Shex.Validate.sample_resources
        (Shex_incremental.Session.validation session)
  | None -> ());
  let snap = Telemetry.snapshot st.tele in
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Telemetry.pp_text ppf snap;
  (match Telemetry.Window.summary obs.window with
  | Some s -> Telemetry.Window.pp_prometheus ppf s
  | None -> ());
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let route st obs path =
  match path with
  | "/health" -> Obs.Http.text "ok\n"
  | "/ready" ->
      if st.session <> None then Obs.Http.text "ready\n"
      else Obs.Http.text ~status:503 "no schema loaded\n"
  | "/metrics" -> Obs.Http.text (metrics_exposition st obs)
  | "/slowlog" ->
      Obs.Http.json
        (match slowlog_of st with
        | Some slog -> Shex.Slowlog.to_json slog
        | None -> Json.Object [ ("armed", Json.Bool false) ])
  | "/stats" ->
      Obs.Http.json
        (Json.Object
           [ ("uptime_s", Json.Number (max 0. (Telemetry.now () -. st.started)));
             ("requests", Json.int (Telemetry.Counter.value st.requests));
             ("errors", Json.int (Telemetry.Counter.value st.errors));
             ("slow_seen",
              Json.int
                (match slowlog_of st with
                | Some slog -> Shex.Slowlog.seen slog
                | None -> 0));
             ( "window",
               match Telemetry.Window.summary obs.window with
               | Some s -> Telemetry.Window.summary_to_json s
               | None -> Json.Null ) ])
  | _ -> Obs.Http.text ~status:404 "not found\n"

(* {2 The select loop}

   stdin must be read with [Unix.read] (not [In_channel]): buffered
   channel reads would steal bytes [select] then never reports,
   deadlocking the loop with complete commands parked in a buffer the
   loop cannot see.  A small line accumulator does the splitting. *)

type reader = {
  rbuf : Buffer.t;  (* bytes read but not yet terminated by '\n' *)
  chunk : Bytes.t;
  mutable eof : bool;
}

let make_reader () = { rbuf = Buffer.create 512; chunk = Bytes.create 65536; eof = false }

(* Read once (the fd just selected readable) and return the completed
   lines, keeping any trailing partial line buffered.  At EOF a
   non-empty partial counts as a final line. *)
let reader_drain r fd =
  match Unix.read fd r.chunk 0 (Bytes.length r.chunk) with
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> []
  | 0 ->
      r.eof <- true;
      let rest = Buffer.contents r.rbuf in
      Buffer.clear r.rbuf;
      if rest = "" then [] else [ rest ]
  | n ->
      Buffer.add_subbytes r.rbuf r.chunk 0 n;
      let s = Buffer.contents r.rbuf in
      let parts = String.split_on_char '\n' s in
      let rec split_last acc = function
        | [ last ] -> (List.rev acc, last)
        | x :: tl -> split_last (x :: acc) tl
        | [] -> ([], "")
      in
      let lines, partial = split_last [] parts in
      Buffer.clear r.rbuf;
      Buffer.add_string r.rbuf partial;
      lines

let process_line st obs line =
  Telemetry.Counter.incr st.requests;
  st.request_id <- st.request_id + 1;
  let rid = st.request_id in
  (match slowlog_of st with
  | Some slog -> Shex.Slowlog.set_context slog (Some rid)
  | None -> ());
  let t0 = Telemetry.now () in
  let result, quit =
    match Json.of_string line with
    | Error msg -> (Error ("parse: " ^ msg), false)
    | Ok cmd -> (
        match handle st obs cmd with
        | json -> (Ok json, false)
        | exception Quit json -> (Ok json, true)
        | exception Bad msg -> (Error msg, false)
        | exception (Sys_error msg | Failure msg | Invalid_argument msg) ->
            (Error msg, false))
  in
  let dt = max 0. (Telemetry.now () -. t0) in
  Telemetry.Span.record st.request_span dt;
  Telemetry.Histogram.observe st.latency (int_of_float (dt *. 1e6));
  (* A load replaces the session (and its slowlog): re-stamp so checks
     of later requests carry their own id, not a stale one. *)
  (match slowlog_of st with
  | Some slog -> Shex.Slowlog.set_context slog None
  | None -> ());
  (match result with
  | Ok json -> answer_line (with_request_id json rid)
  | Error msg ->
      Telemetry.Counter.incr st.errors;
      Printf.printf "error: %s\n%!" msg);
  if quit then shutdown st obs "shutdown"

let rec loop st obs reader =
  (match !stop_reason with
  | Some reason -> shutdown st obs reason
  | None -> ());
  let now = Telemetry.now () in
  (* Timer-driven ticks only for a positive interval; interval 0 ticks
     after every wake (below), so an idle daemon blocks instead of
     spinning. *)
  if obs.interval > 0. && now >= obs.next_tick then begin
    tick st obs ~now;
    obs.next_tick <- now +. obs.interval
  end;
  let timeout =
    if obs.interval > 0. then max 0.01 (obs.next_tick -. Telemetry.now ())
    else -1.  (* block until input *)
  in
  let read_fds =
    (if reader.eof then [] else [ Unix.stdin ])
    @ (match obs.http with Some h -> [ Obs.Http.fd h ] | None -> [])
  in
  if read_fds = [] && obs.interval <= 0. then shutdown st obs "eof";
  (match Unix.select read_fds [] [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | readable, _, _ ->
      (match obs.http with
      | Some h when List.mem (Obs.Http.fd h) readable ->
          Obs.Http.serve_ready h (route st obs)
      | _ -> ());
      if List.mem Unix.stdin readable then begin
        let lines = reader_drain reader Unix.stdin in
        List.iter
          (fun line ->
            if String.trim line <> "" then process_line st obs line)
          lines;
        if reader.eof && obs.http = None && obs.journal = None then
          (* Plain daemon: EOF ends the conversation, like before the
             obs plane existed. *)
          shutdown st obs "eof"
        else if reader.eof then
          (* Obs daemon: record the drained state, then keep serving
             scrapes until a signal — the Prometheus deployment mode,
             where stdin is a held-open pipe or /dev/null. *)
          journal_event obs "stdin_eof" []
      end;
      if obs.interval = 0. && (obs.http <> None || obs.journal <> None) then
        tick st obs ~now:(Telemetry.now ()));
  loop st obs reader

let run ?schema_path ?data_path ?slow_ms ?obs_port ?(obs_interval = 10.)
    ?journal_path ?journal_max_bytes ~engine ~domains () =
  let tele = Telemetry.create () in
  let st =
    { engine; domains; tele; started = Telemetry.now ();
      requests = Telemetry.counter tele "serve_requests";
      errors = Telemetry.counter tele "serve_errors";
      request_span = Telemetry.span tele "serve_request";
      latency =
        Telemetry.histogram tele
          ~help:"serve request wall time (microseconds)" "serve_latency_us";
      request_id = 0; slow_ms; session = None }
  in
  let http =
    match obs_port with
    | None -> None
    | Some port ->
        let h = Obs.Http.create ~port () in
        (* Stderr, so protocol stdout stays clean; tests read the
           resolved port (0 = kernel-assigned) from this line. *)
        Printf.eprintf "obs: listening on http://127.0.0.1:%d\n%!"
          (Obs.Http.port h);
        Some h
  in
  let journal =
    match journal_path with
    | None -> None
    | Some path -> Some (Obs.Journal.create ?max_bytes:journal_max_bytes path)
  in
  let obs =
    { http; journal;
      window = Telemetry.Window.create ~interval_s:obs_interval ();
      interval = obs_interval;
      next_tick = Telemetry.now () +. obs_interval;
      spilled = 0 }
  in
  if http <> None || journal <> None then begin
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    journal_event obs "start"
      ([ ("pid", Json.int (Unix.getpid ())) ]
      @ match http with
        | Some h -> [ ("port", Json.int (Obs.Http.port h)) ]
        | None -> [])
  end;
  (* Graceful shutdown on the signals a supervisor sends.  Installed
     unconditionally: a plain daemon also deserves exit 0 on SIGTERM. *)
  Sys.set_signal Sys.sigterm
    (Sys.Signal_handle (fun _ -> stop_reason := Some "sigterm"));
  Sys.set_signal Sys.sigint
    (Sys.Signal_handle (fun _ -> stop_reason := Some "sigint"));
  (* Startup --schema/--data failures are fatal (exit 2 through the
     CLI's usual error path), unlike in-protocol load errors. *)
  (try
     match schema_path with
     | None -> ()
     | Some path ->
         let schema = load_schema path in
         let graph =
           match data_path with
           | None -> Rdf.Graph.empty
           | Some data -> load_graph data
         in
         make_session st schema graph
   with Bad msg -> failwith msg);
  (* Baseline tick: gives replay a t₀ sample so the very first window
     covers daemon start → first interval. *)
  if http <> None || journal <> None then tick st obs ~now:(Telemetry.now ());
  loop st obs (make_reader ())
